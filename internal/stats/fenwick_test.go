package stats

import (
	"testing"
	"testing/quick"
)

func TestFenwickBasics(t *testing.T) {
	f := NewFenwick(10)
	if f.Len() != 10 {
		t.Fatalf("Len = %d", f.Len())
	}
	f.Add(0, 5)
	f.Add(9, 3)
	f.Add(4, -2)
	if got := f.PrefixSum(0); got != 5 {
		t.Errorf("PrefixSum(0) = %d, want 5", got)
	}
	if got := f.PrefixSum(9); got != 6 {
		t.Errorf("PrefixSum(9) = %d, want 6", got)
	}
	if got := f.RangeSum(1, 8); got != -2 {
		t.Errorf("RangeSum(1,8) = %d, want -2", got)
	}
	if got := f.RangeSum(5, 3); got != 0 {
		t.Errorf("inverted RangeSum = %d, want 0", got)
	}
	if got := f.PrefixSum(-1); got != 0 {
		t.Errorf("PrefixSum(-1) = %d, want 0", got)
	}
	if got := f.PrefixSum(100); got != 6 {
		t.Errorf("PrefixSum beyond range = %d, want 6", got)
	}
}

func TestFenwickPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewFenwick(-1) },
		func() { NewFenwick(5).Add(5, 1) },
		func() { NewFenwick(5).Add(-1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestFenwickAgainstNaive cross-checks against a plain slice.
func TestFenwickAgainstNaive(t *testing.T) {
	const n = 200
	f := NewFenwick(n)
	naive := make([]int64, n)
	r := NewRNG(12345)
	for op := 0; op < 5000; op++ {
		i := r.Intn(n)
		delta := int64(r.Intn(21) - 10)
		f.Add(i, delta)
		naive[i] += delta
		lo, hi := r.Intn(n), r.Intn(n)
		if lo > hi {
			lo, hi = hi, lo
		}
		var want int64
		for j := lo; j <= hi; j++ {
			want += naive[j]
		}
		if got := f.RangeSum(lo, hi); got != want {
			t.Fatalf("op %d: RangeSum(%d,%d) = %d, want %d", op, lo, hi, got, want)
		}
	}
}

func TestFenwickQuick(t *testing.T) {
	check := func(adds []uint16, probe uint8) bool {
		const n = 64
		f := NewFenwick(n)
		naive := make([]int64, n)
		for _, a := range adds {
			i := int(a) % n
			f.Add(i, 1)
			naive[i]++
		}
		p := int(probe) % n
		var want int64
		for j := 0; j <= p; j++ {
			want += naive[j]
		}
		return f.PrefixSum(p) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
