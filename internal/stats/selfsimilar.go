package stats

import (
	"fmt"
	"math"
)

// SelfSimilar samples page numbers 1..N under the self-similar ("Zipfian")
// skew distribution used in Section 4.2 of the paper:
//
//	Pr(page number <= i) = (i/N)^(log α / log β)
//
// with constants 0 < α, β < 1. A fraction α of the references targets a
// fraction β of the pages, and the same 80-20-style relationship holds
// recursively inside both the hot and the cold fraction.
//
// Sampling uses the inverse CDF: for u uniform in [0,1),
// i = ceil(N · u^(log β / log α)).
type SelfSimilar struct {
	n     int
	alpha float64
	beta  float64
	exp   float64 // log β / log α, the inverse-CDF exponent
}

// NewSelfSimilar returns a sampler over pages 1..n with skew (alpha, beta).
// The paper's Table 4.2 uses alpha=0.8, beta=0.2 (the "80-20 rule").
func NewSelfSimilar(n int, alpha, beta float64) (*SelfSimilar, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: self-similar population must be positive, got %d", n)
	}
	if alpha <= 0 || alpha >= 1 || beta <= 0 || beta >= 1 {
		return nil, fmt.Errorf("stats: self-similar skew constants must lie in (0,1), got α=%g β=%g", alpha, beta)
	}
	return &SelfSimilar{
		n:     n,
		alpha: alpha,
		beta:  beta,
		exp:   math.Log(beta) / math.Log(alpha),
	}, nil
}

// N returns the population size.
func (s *SelfSimilar) N() int { return s.n }

// Sample draws a page number in [1, N]. Page 1 is the hottest.
func (s *SelfSimilar) Sample(r *RNG) int {
	u := r.Float64()
	i := int(math.Ceil(float64(s.n) * math.Pow(u, s.exp)))
	if i < 1 {
		i = 1
	}
	if i > s.n {
		i = s.n
	}
	return i
}

// CDF returns Pr(page number <= i), the paper's defining formula.
func (s *SelfSimilar) CDF(i int) float64 {
	switch {
	case i <= 0:
		return 0
	case i >= s.n:
		return 1
	}
	return math.Pow(float64(i)/float64(s.n), math.Log(s.alpha)/math.Log(s.beta))
}

// Prob returns the reference probability β_i of page i, the probability mass
// CDF(i) - CDF(i-1). The full vector is what the A0 oracle consumes.
func (s *SelfSimilar) Prob(i int) float64 {
	if i < 1 || i > s.n {
		return 0
	}
	return s.CDF(i) - s.CDF(i-1)
}

// ProbVector returns the reference probabilities of all pages, indexed from
// 0 (page 1 is element 0). The entries sum to 1 up to rounding.
func (s *SelfSimilar) ProbVector() []float64 {
	v := make([]float64, s.n)
	prev := 0.0
	for i := 1; i <= s.n; i++ {
		c := s.CDF(i)
		v[i-1] = c - prev
		prev = c
	}
	return v
}
