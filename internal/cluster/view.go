package cluster

import (
	"fmt"
	"strings"

	"repro/internal/server/wire"
)

// This file is the static-config side of membership: a human-writable
// spec string ("n0=127.0.0.1:4980,n1=127.0.0.1:4981") parsed into a
// bootstrap view, and the epoch-bumping edits a rebalance is built from.
//
// A parsed spec carries epoch 0 on purpose: spec files are bootstrap
// hints, not authority. Servers hold epoch >= 1 views, so the first MOVED
// redirect (or explicit refresh) a spec-configured client sees replaces
// the hint with the cluster's real, newer view.

// ParseSpec parses "id=addr,id=addr,..." into a bootstrap (epoch 0 by
// wire convention — see Bootstrap for installing it into a server) set of
// nodes. IDs must be unique and non-empty; addresses non-empty.
func ParseSpec(spec string) (wire.View, error) {
	var nodes []wire.NodeAddr
	seen := make(map[string]struct{})
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return wire.View{}, fmt.Errorf("cluster: bad spec entry %q (want id=addr)", part)
		}
		if _, dup := seen[id]; dup {
			return wire.View{}, fmt.Errorf("cluster: duplicate node id %q in spec", id)
		}
		seen[id] = struct{}{}
		nodes = append(nodes, wire.NodeAddr{ID: id, Addr: addr})
	}
	if len(nodes) == 0 {
		return wire.View{}, fmt.Errorf("cluster: empty spec %q", spec)
	}
	return wire.View{Epoch: 0, Nodes: nodes}, nil
}

// FormatSpec renders a view back into the spec syntax.
func FormatSpec(v wire.View) string {
	parts := make([]string, len(v.Nodes))
	for i, n := range v.Nodes {
		parts[i] = n.ID + "=" + n.Addr
	}
	return strings.Join(parts, ",")
}

// Bootstrap stamps a bootstrap (epoch-0) view as the cluster's first real
// view. Installing it into a freshly booted server makes that server
// authoritative over spec-configured clients.
func Bootstrap(v wire.View) wire.View {
	v2 := cloneView(v)
	v2.Epoch = 1
	return v2
}

// Without returns a copy of the view with one node removed and the epoch
// bumped — the target view of a node-removal rebalance.
func Without(v wire.View, id string) (wire.View, error) {
	if _, ok := v.Node(id); !ok {
		return wire.View{}, fmt.Errorf("cluster: node %q not in view (epoch %d)", id, v.Epoch)
	}
	if len(v.Nodes) == 1 {
		return wire.View{}, fmt.Errorf("cluster: removing %q would empty the cluster", id)
	}
	v2 := wire.View{Epoch: v.Epoch + 1, Nodes: make([]wire.NodeAddr, 0, len(v.Nodes)-1)}
	for _, n := range v.Nodes {
		if n.ID != id {
			v2.Nodes = append(v2.Nodes, n)
		}
	}
	return v2, nil
}

// With returns a copy of the view with one node added and the epoch
// bumped — the target view of a node-join rebalance.
func With(v wire.View, id, addr string) (wire.View, error) {
	if id == "" || addr == "" {
		return wire.View{}, fmt.Errorf("cluster: joining node needs id and addr")
	}
	if _, ok := v.Node(id); ok {
		return wire.View{}, fmt.Errorf("cluster: node %q already in view (epoch %d)", id, v.Epoch)
	}
	v2 := cloneView(v)
	v2.Epoch = v.Epoch + 1
	v2.Nodes = append(v2.Nodes, wire.NodeAddr{ID: id, Addr: addr})
	return v2, nil
}

func cloneView(v wire.View) wire.View {
	nodes := make([]wire.NodeAddr, len(v.Nodes))
	copy(nodes, v.Nodes)
	return wire.View{Epoch: v.Epoch, Nodes: nodes}
}
