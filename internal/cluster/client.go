package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/server/client"
	"repro/internal/server/wire"
)

// Client is the cluster-aware client: it owns a membership view, routes
// every keyed operation to the ring owner, keeps a small pool of
// connections per node, and retries along the axes the single-node
// client's error taxonomy exposes:
//
//   - ErrBusy / ErrUnavailable: the node is shedding or its breaker is
//     open. The connection stays pooled; the *node* is penalised with an
//     exponential backoff before the next attempt. Other nodes are
//     unaffected — back off the node, not the ring.
//   - ErrTransport: the connection is poisoned. It is discarded, the node
//     penalised, and — once per operation — the view is refreshed from a
//     surviving node, so a dead node that was rebalanced away is routed
//     around without any out-of-band signal.
//   - ErrMoved: the replier no longer owns the key. The redirect carries
//     the replier's whole view; if it is strictly newer the client adopts
//     it and the very next attempt uses the patched ring. A stale redirect
//     (mid-rebalance bounce) just waits out a short backoff.
//   - Everything else is terminal and returned as-is.
type Config struct {
	// View is the bootstrap membership (typically ParseSpec output,
	// epoch 0). Any server's view is newer and replaces it on first
	// contact with a MOVED redirect or Refresh.
	View wire.View
	// Client tunes the per-connection options.
	Client client.Options
	// MaxAttempts bounds requests sent per operation, counting redirects.
	// Zero selects 8 — enough to ride out a rebalance bounce window plus
	// one reroute after a node death.
	MaxAttempts int
	// BusyBackoff is the first per-node penalty after a refusal; it
	// doubles per consecutive failure up to MaxBackoff. Zero selects 2ms.
	BusyBackoff time.Duration
	// MaxBackoff caps the per-node penalty. Zero selects 250ms.
	MaxBackoff time.Duration
	// PoolSize caps idle connections kept per node. Zero selects 2.
	PoolSize int
	// Obs, when set, gets per-node outcome counters registered as
	// lruk_cluster_client_ops_total{node,result}.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.BusyBackoff <= 0 {
		c.BusyBackoff = 2 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 250 * time.Millisecond
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 2
	}
	return c
}

// NodeCounters is a snapshot of one node's per-outcome request counts.
type NodeCounters struct {
	OK          uint64
	Busy        uint64
	Unavailable uint64
	Moved       uint64
	Transport   uint64
	Err         uint64
}

// node is the per-node state: address, idle connection pool, penalty
// clock, and outcome counters. Entries are never removed from the node
// map — a node leaving the view just stops being routed to (its pool is
// drained), which keeps counters stable and obs registration once-only.
type node struct {
	id string

	mu      sync.Mutex
	addr    string
	idle    []*client.Client
	fails   int
	nextTry time.Time

	// noTrace remembers that this node rejected the trace-context wire
	// extension (an old server); every future connection to it dials
	// downgraded so the rejection happens at most once per node.
	noTrace atomic.Bool

	ok, busy, unavailable, moved, transport, errs atomic.Uint64
}

// setAddr updates the node's address, draining the pool if it changed
// (the idle connections point at the old endpoint).
func (n *node) setAddr(addr string) {
	n.mu.Lock()
	if n.addr != addr {
		n.addr = addr
		n.drainLocked()
	}
	n.mu.Unlock()
}

func (n *node) drainLocked() {
	for _, c := range n.idle {
		_ = c.Close()
	}
	n.idle = nil
}

// acquire pops an idle connection or dials a fresh one.
func (n *node) acquire(opts client.Options) (*client.Client, error) {
	n.mu.Lock()
	if k := len(n.idle); k > 0 {
		c := n.idle[k-1]
		n.idle = n.idle[:k-1]
		n.mu.Unlock()
		return c, nil
	}
	addr := n.addr
	n.mu.Unlock()
	c, err := client.DialOptions(addr, opts)
	if err == nil && n.noTrace.Load() {
		c.DisableTrace()
	}
	return c, err
}

// release returns a healthy connection to the pool (closing it if the
// pool is full) and clears the node's penalty.
func (n *node) release(c *client.Client, poolSize int) {
	n.mu.Lock()
	n.fails = 0
	n.nextTry = time.Time{}
	if len(n.idle) < poolSize {
		n.idle = append(n.idle, c)
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	_ = c.Close()
}

// penalize backs the node off exponentially: base << (fails-1), capped.
func (n *node) penalize(base, max time.Duration) {
	n.mu.Lock()
	n.fails++
	d := base << (n.fails - 1)
	if d > max || d <= 0 {
		d = max
	}
	n.nextTry = time.Now().Add(d)
	n.mu.Unlock()
}

// holdoff reports how long until the node should next be tried.
func (n *node) holdoff() time.Duration {
	n.mu.Lock()
	d := time.Until(n.nextTry)
	n.mu.Unlock()
	return d
}

// Client routes page operations across a cluster. Safe for concurrent
// use; concurrent operations to different nodes do not serialise.
type Client struct {
	cfg Config

	mu    sync.RWMutex
	view  wire.View
	ring  *Ring
	nodes map[string]*node
	close bool

	scanIdx atomic.Uint64
}

// New builds a cluster client over a bootstrap view.
func New(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if len(cfg.View.Nodes) == 0 {
		return nil, errors.New("cluster: client needs a non-empty bootstrap view")
	}
	c := &Client{
		cfg:   cfg,
		view:  cfg.View,
		ring:  NewRing(cfg.View),
		nodes: make(map[string]*node),
	}
	for _, n := range cfg.View.Nodes {
		c.node(n.ID, n.Addr)
	}
	return c, nil
}

// node returns (creating if needed) the per-node state, keeping its
// address current.
func (c *Client) node(id, addr string) *node {
	c.mu.RLock()
	n := c.nodes[id]
	c.mu.RUnlock()
	if n == nil {
		c.mu.Lock()
		if n = c.nodes[id]; n == nil {
			n = &node{id: id, addr: addr}
			c.nodes[id] = n
			c.registerObs(n)
		}
		c.mu.Unlock()
	}
	n.setAddr(addr)
	return n
}

// registerObs exposes a node's outcome counters. CounterFunc re-registration
// replaces the callback, so this is idempotent per node id.
func (c *Client) registerObs(n *node) {
	if c.cfg.Obs == nil {
		return
	}
	const name = "lruk_cluster_client_ops_total"
	const help = "Cluster client requests by node and outcome."
	for _, rc := range []struct {
		result string
		src    *atomic.Uint64
	}{
		{"ok", &n.ok}, {"busy", &n.busy}, {"unavailable", &n.unavailable},
		{"moved", &n.moved}, {"transport", &n.transport}, {"error", &n.errs},
	} {
		src := rc.src
		c.cfg.Obs.CounterFunc(name, help,
			obs.Labels{"node": n.id, "result": rc.result},
			func() float64 { return float64(src.Load()) })
	}
}

// View returns the currently held membership view.
func (c *Client) View() wire.View {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return cloneView(c.view)
}

// adopt installs a view if it is strictly newer than the held one,
// reconciling node addresses and draining pools of departed nodes.
// It reports whether the view was installed.
func (c *Client) adopt(v wire.View) bool {
	c.mu.Lock()
	if v.Epoch <= c.view.Epoch {
		c.mu.Unlock()
		return false
	}
	c.view = cloneView(v)
	c.ring = NewRing(v)
	current := make(map[string]string, len(v.Nodes))
	for _, n := range v.Nodes {
		current[n.ID] = n.Addr
	}
	var drop []*node
	for id, n := range c.nodes {
		if _, ok := current[id]; !ok {
			drop = append(drop, n)
		}
	}
	c.mu.Unlock()
	for _, n := range drop {
		n.mu.Lock()
		n.drainLocked()
		n.mu.Unlock()
	}
	for _, na := range v.Nodes {
		c.node(na.ID, na.Addr)
	}
	return true
}

// owner resolves a key to its owning node under the current ring.
func (c *Client) owner(key int64) (*node, error) {
	c.mu.RLock()
	if c.close {
		c.mu.RUnlock()
		return nil, errors.New("cluster: client closed")
	}
	id := c.ring.Owner(key)
	var addr string
	for _, n := range c.view.Nodes {
		if n.ID == id {
			addr = n.Addr
			break
		}
	}
	c.mu.RUnlock()
	if id == "" || addr == "" {
		return nil, fmt.Errorf("cluster: no owner for key %d", key)
	}
	return c.node(id, addr), nil
}

// sleepCtx waits d or until the context ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// doKey runs one keyed operation with the full retry policy.
func (c *Client) doKey(ctx context.Context, key int64, fn func(*client.Client) error) error {
	var lastErr error
	refreshed := false
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		n, err := c.owner(key)
		if err != nil {
			return err
		}
		if d := n.holdoff(); d > 0 {
			if err := sleepCtx(ctx, d); err != nil {
				return err
			}
		}
		conn, err := n.acquire(c.cfg.Client)
		if err != nil {
			n.transport.Add(1)
			n.penalize(c.cfg.BusyBackoff, c.cfg.MaxBackoff)
			lastErr = err
			if !refreshed {
				refreshed = true
				c.refreshFrom(ctx, n.id)
			}
			continue
		}
		err = fn(conn)
		switch {
		case err == nil:
			n.ok.Add(1)
			n.release(conn, c.cfg.PoolSize)
			return nil
		case errors.Is(err, client.ErrMoved):
			n.moved.Add(1)
			n.release(conn, c.cfg.PoolSize)
			lastErr = err
			var se *client.Error
			adopted := false
			if errors.As(err, &se) {
				if m, ok := se.MovedView(); ok {
					adopted = c.adopt(m.View)
				}
			}
			if !adopted {
				// Stale redirect: the cluster is mid-rebalance and this
				// key is bouncing. Wait out a slice of the window.
				if werr := sleepCtx(ctx, c.bounceWait(attempt)); werr != nil {
					return werr
				}
			}
		case errors.Is(err, client.ErrBusy), errors.Is(err, client.ErrUnavailable):
			if errors.Is(err, client.ErrBusy) {
				n.busy.Add(1)
			} else {
				n.unavailable.Add(1)
			}
			n.release(conn, c.cfg.PoolSize)
			n.penalize(c.cfg.BusyBackoff, c.cfg.MaxBackoff)
			lastErr = err
		case errors.Is(err, client.ErrTransport):
			n.transport.Add(1)
			_ = conn.Close()
			n.penalize(c.cfg.BusyBackoff, c.cfg.MaxBackoff)
			lastErr = err
			if !refreshed {
				refreshed = true
				c.refreshFrom(ctx, n.id)
			}
		case errors.Is(err, client.ErrTraceDowngrade):
			// The node runs an old server that rejects the trace extension
			// (and closes the connection after answering). Remember the
			// downgrade so every future dial to it skips the extension, and
			// retry the operation untraced on a fresh connection — no
			// penalty, the node is healthy, it just predates tracing.
			n.noTrace.Store(true)
			_ = conn.Close()
			lastErr = err
		case ctx.Err() != nil:
			_ = conn.Close()
			return ctx.Err()
		default:
			// Terminal: not found, bad request, internal, deadline with a
			// live local context, or a malformed-reply client bug.
			n.errs.Add(1)
			n.release(conn, c.cfg.PoolSize)
			return err
		}
	}
	return fmt.Errorf("cluster: key %d: %d attempts exhausted: %w", key, c.cfg.MaxAttempts, lastErr)
}

// bounceWait paces retries of a key caught in a rebalance bounce: short
// at first (the window usually closes in milliseconds), growing toward
// MaxBackoff so a long handoff is not hammered.
func (c *Client) bounceWait(attempt int) time.Duration {
	d := c.cfg.BusyBackoff << attempt
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	return d
}

// refreshFrom asks any node other than failedID for its view and adopts
// it if newer. Best effort: used to discover that a dead node was
// rebalanced away.
func (c *Client) refreshFrom(ctx context.Context, failedID string) {
	c.mu.RLock()
	others := make([]wire.NodeAddr, 0, len(c.view.Nodes))
	for _, n := range c.view.Nodes {
		if n.ID != failedID {
			others = append(others, n)
		}
	}
	c.mu.RUnlock()
	for _, na := range others {
		if ctx.Err() != nil {
			return
		}
		n := c.node(na.ID, na.Addr)
		conn, err := n.acquire(c.cfg.Client)
		if err != nil {
			continue
		}
		v, err := conn.ViewGet(ctx)
		if err != nil {
			_ = conn.Close()
			continue
		}
		n.release(conn, c.cfg.PoolSize)
		c.adopt(v)
		return
	}
}

// Refresh explicitly pulls the newest view reachable from any member.
func (c *Client) Refresh(ctx context.Context) error {
	c.mu.RLock()
	members := make([]wire.NodeAddr, len(c.view.Nodes))
	copy(members, c.view.Nodes)
	c.mu.RUnlock()
	var lastErr error
	for _, na := range members {
		n := c.node(na.ID, na.Addr)
		conn, err := n.acquire(c.cfg.Client)
		if err != nil {
			lastErr = err
			continue
		}
		v, err := conn.ViewGet(ctx)
		if err != nil {
			_ = conn.Close()
			lastErr = err
			continue
		}
		n.release(conn, c.cfg.PoolSize)
		c.adopt(v)
		return nil
	}
	return fmt.Errorf("cluster: refresh failed against every member: %w", lastErr)
}

// Get fetches a customer's record from its owning node.
func (c *Client) Get(ctx context.Context, custID int64) ([]byte, error) {
	var body []byte
	err := c.doKey(ctx, custID, func(conn *client.Client) error {
		b, err := conn.Get(ctx, custID)
		if err == nil {
			body = b
		}
		return err
	})
	return body, err
}

// Update overwrites a customer's filler bytes on its owning node.
func (c *Client) Update(ctx context.Context, custID int64, fill byte) error {
	return c.doKey(ctx, custID, func(conn *client.Client) error {
		return conn.Update(ctx, custID, fill)
	})
}

// Scan runs a full sequential scan on ONE node, round-robined per call:
// every node loads the full key population, so a single node's scan is
// the whole answer and fanning out would just multiply the disk work.
// Fails over to the next node on refusal or transport error.
func (c *Client) Scan(ctx context.Context) (int, error) {
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		c.mu.RLock()
		if c.close {
			c.mu.RUnlock()
			return 0, errors.New("cluster: client closed")
		}
		members := make([]wire.NodeAddr, len(c.view.Nodes))
		copy(members, c.view.Nodes)
		c.mu.RUnlock()
		if len(members) == 0 {
			return 0, errors.New("cluster: empty view")
		}
		na := members[int(c.scanIdx.Add(1)-1)%len(members)]
		n := c.node(na.ID, na.Addr)
		if n.holdoff() > 0 {
			continue // try the next node in rotation instead of waiting
		}
		conn, err := n.acquire(c.cfg.Client)
		if err != nil {
			n.transport.Add(1)
			n.penalize(c.cfg.BusyBackoff, c.cfg.MaxBackoff)
			lastErr = err
			continue
		}
		count, err := conn.Scan(ctx)
		switch {
		case err == nil:
			n.ok.Add(1)
			n.release(conn, c.cfg.PoolSize)
			return count, nil
		case errors.Is(err, client.ErrBusy), errors.Is(err, client.ErrUnavailable):
			if errors.Is(err, client.ErrBusy) {
				n.busy.Add(1)
			} else {
				n.unavailable.Add(1)
			}
			n.release(conn, c.cfg.PoolSize)
			n.penalize(c.cfg.BusyBackoff, c.cfg.MaxBackoff)
			lastErr = err
		case errors.Is(err, client.ErrTransport):
			n.transport.Add(1)
			_ = conn.Close()
			n.penalize(c.cfg.BusyBackoff, c.cfg.MaxBackoff)
			lastErr = err
		case errors.Is(err, client.ErrTraceDowngrade):
			n.noTrace.Store(true)
			_ = conn.Close()
			lastErr = err
		case ctx.Err() != nil:
			_ = conn.Close()
			return 0, ctx.Err()
		default:
			n.errs.Add(1)
			n.release(conn, c.cfg.PoolSize)
			return 0, err
		}
	}
	return 0, fmt.Errorf("cluster: scan: %d attempts exhausted: %w", c.cfg.MaxAttempts, lastErr)
}

// Flush fans a flush barrier out to every member, joining any failures.
func (c *Client) Flush(ctx context.Context) error {
	var errs []error
	for _, na := range c.View().Nodes {
		n := c.node(na.ID, na.Addr)
		conn, err := n.acquire(c.cfg.Client)
		if err != nil {
			errs = append(errs, fmt.Errorf("node %s: %w", na.ID, err))
			continue
		}
		if err := conn.Flush(ctx); err != nil {
			_ = conn.Close()
			errs = append(errs, fmt.Errorf("node %s: %w", na.ID, err))
			continue
		}
		n.release(conn, c.cfg.PoolSize)
	}
	return errors.Join(errs...)
}

// StatsAll snapshots every member's server stats, keyed by node id.
func (c *Client) StatsAll(ctx context.Context) (map[string]wire.StatsReply, error) {
	out := make(map[string]wire.StatsReply)
	var errs []error
	for _, na := range c.View().Nodes {
		n := c.node(na.ID, na.Addr)
		conn, err := n.acquire(c.cfg.Client)
		if err != nil {
			errs = append(errs, fmt.Errorf("node %s: %w", na.ID, err))
			continue
		}
		reply, err := conn.Stats(ctx)
		if err != nil {
			_ = conn.Close()
			errs = append(errs, fmt.Errorf("node %s: %w", na.ID, err))
			continue
		}
		n.release(conn, c.cfg.PoolSize)
		out[na.ID] = reply
	}
	return out, errors.Join(errs...)
}

// Counters snapshots the per-node outcome counters, keyed by node id.
func (c *Client) Counters() map[string]NodeCounters {
	c.mu.RLock()
	nodes := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.RUnlock()
	out := make(map[string]NodeCounters, len(nodes))
	for _, n := range nodes {
		out[n.id] = NodeCounters{
			OK:          n.ok.Load(),
			Busy:        n.busy.Load(),
			Unavailable: n.unavailable.Load(),
			Moved:       n.moved.Load(),
			Transport:   n.transport.Load(),
			Err:         n.errs.Load(),
		}
	}
	return out
}

// Close drains every pool. Outstanding operations on acquired
// connections finish (or fail) independently.
func (c *Client) Close() error {
	c.mu.Lock()
	c.close = true
	nodes := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	for _, n := range nodes {
		n.mu.Lock()
		n.drainLocked()
		n.mu.Unlock()
	}
	return nil
}
