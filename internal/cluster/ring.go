// Package cluster turns N lrukd page-service nodes into one logical
// service: a consistent-hash ring assigns every customer key to exactly
// one node, a membership view (internal/server/wire.View) names the nodes
// and is totally ordered by epoch, a cluster-aware client routes and
// retries against that ring, and a rebalance coordinator moves key state
// between nodes when the membership changes (DESIGN.md §16).
//
// The ring is the contract everything else hangs off: any two
// participants holding views with the same node-id set compute the same
// owner for every key, because placement is a pure function of node ids
// and a fixed, documented seed — no RNG, no per-process state. Epochs,
// addresses, and node order never influence placement, so a node can
// change address (or a view be re-stamped) without moving a single key.
package cluster

import (
	"sort"

	"repro/internal/server/wire"
)

const (
	// VNodes is the number of ring points each node projects. More points
	// smooth the key shares (the per-node share error shrinks roughly with
	// 1/sqrt(VNodes)); 128 keeps a 3-node cluster's max/min request-share
	// ratio comfortably inside lrukload's default -max-skew gates while
	// ring construction stays trivially cheap.
	VNodes = 128

	// placementSeed decorrelates the ring's hash space from anything else
	// that might hash the same ids or keys. It is a protocol constant:
	// changing it moves every key on every cluster, so it changes only
	// with a deliberate, documented migration.
	placementSeed = 0x6c72756b5f726e67 // "lruk_rng"
)

// Ring is an immutable consistent-hash ring over a view's node set.
type Ring struct {
	hashes []uint64 // sorted ring points
	owners []string // owners[i] owns the arc ending at hashes[i]
}

// NewRing builds the ring for a view. Node order in the view is
// irrelevant; only the set of ids matters.
func NewRing(v wire.View) *Ring {
	type point struct {
		h  uint64
		id string
	}
	pts := make([]point, 0, len(v.Nodes)*VNodes)
	for _, n := range v.Nodes {
		base := fnv1a(n.ID) ^ placementSeed
		for i := 0; i < VNodes; i++ {
			// Golden-ratio stepping plus a strong finalizer spreads one
			// node's points uniformly and independently of other nodes'.
			pts = append(pts, point{h: mix64(base + uint64(i)*0x9E3779B97F4A7C15), id: n.ID})
		}
	}
	// Deterministic total order: by hash, ties (astronomically rare) by id,
	// so every participant sorts identically.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		return pts[i].id < pts[j].id
	})
	r := &Ring{
		hashes: make([]uint64, len(pts)),
		owners: make([]string, len(pts)),
	}
	for i, p := range pts {
		r.hashes[i] = p.h
		r.owners[i] = p.id
	}
	return r
}

// Owner returns the node id owning the key, or "" on an empty ring.
func (r *Ring) Owner(key int64) string {
	if len(r.hashes) == 0 {
		return ""
	}
	h := KeyHash(key)
	// First ring point at or after the key's hash; wrap past the top.
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.owners[i]
}

// KeyHash is the position of a customer key on the ring. Exported so
// tests and tools can reason about placement directly.
func KeyHash(key int64) uint64 {
	return mix64(uint64(key) ^ placementSeed)
}

// mix64 is the splitmix64 finalizer: a fast, well-avalanched 64-bit
// mixer, which is what makes sequential customer ids land uniformly.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fnv1a hashes a node id (FNV-1a 64); mix64 finalizes its vnode points.
func fnv1a(s string) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
