package cluster

import (
	"context"
	"fmt"

	"repro/internal/server/client"
	"repro/internal/server/wire"
)

// This file is the rebalance coordinator: the admin-plane driver that
// moves key state between nodes when the membership changes, ordered so
// that no acknowledged update is ever lost (DESIGN.md §16).
//
// The phase ordering, global across the cluster:
//
//	(1) ViewSet(new) then Flush on EVERY source (node shedding keys).
//	    From the flip a source answers MOVED for every moved key, so it
//	    cannot acknowledge an update the copy would miss; the flush
//	    barrier drains requests already in flight past the ownership
//	    check, so everything the source ever acknowledged is in its
//	    store and durable.
//	(2) Copy: RangeRead windows of each source's key state, keep the
//	    entries whose owner changes, RangeWrite them to their new
//	    owners. Destinations still hold the old view — they answer MOVED
//	    for the moved keys too — so the copy cannot race a client write.
//	(3) Flush each destination: the copied state is durable before any
//	    client is told to read it.
//	(4) ViewSet(new) on the remaining nodes; destinations start serving.
//
// Step (2)'s safety leans on sources and destinations being disjoint,
// which holds for the operations the cluster performs — a single join
// (old nodes shed only to the new node) or a single removal (only the
// removed node sheds). Rebalance verifies the disjointness against the
// actual key population and refuses composite view changes; decompose
// them into single steps.
//
// Between (1) and (4) a moved key is briefly unavailable — every replica
// bounces it with MOVED — but never inconsistent; the cluster client's
// bounce backoff rides the window out. A coordinator crash before (4)
// leaves moved keys bouncing (unavailable, not lost); rerunning the same
// rebalance completes it. A crash *during* (4) is the one window where a
// rerun must not re-copy — a flipped destination may have accepted fresh
// writes — so finish with ViewSet alone instead of rerunning.

// RebalanceConfig tunes a Rebalance run.
type RebalanceConfig struct {
	// Keys is the customer key population: keys are scanned in [0, Keys).
	Keys int64
	// BatchSize caps entries per RangeRead/RangeWrite request. Zero
	// selects 2048; values above wire.MaxRangeEntries are clamped.
	BatchSize int
	// Client tunes the admin connections dialed to each node.
	Client client.Options
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

func (c RebalanceConfig) withDefaults() RebalanceConfig {
	if c.BatchSize <= 0 {
		c.BatchSize = 2048
	}
	if c.BatchSize > wire.MaxRangeEntries {
		c.BatchSize = wire.MaxRangeEntries
	}
	return c
}

func (c RebalanceConfig) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// Rebalance drives the handoff from oldView to newView. Every node in
// oldView must be reachable (a node being *removed* hands its keys off,
// so it must be alive for the transfer); newView must be strictly newer.
func Rebalance(ctx context.Context, oldView, newView wire.View, cfg RebalanceConfig) error {
	cfg = cfg.withDefaults()
	if cfg.Keys <= 0 {
		return fmt.Errorf("cluster: rebalance needs a positive key population, got %d", cfg.Keys)
	}
	if newView.Epoch <= oldView.Epoch {
		return fmt.Errorf("cluster: rebalance target epoch %d not newer than current %d",
			newView.Epoch, oldView.Epoch)
	}
	if len(newView.Nodes) == 0 {
		return fmt.Errorf("cluster: rebalance target view is empty")
	}

	oldRing, newRing := NewRing(oldView), NewRing(newView)

	// Classify the population: which nodes shed keys, which receive.
	// Copy safety requires the two sets to be disjoint (see file doc).
	sources := make(map[string]bool)
	dests := make(map[string]bool)
	for k := int64(0); k < cfg.Keys; k++ {
		was, is := oldRing.Owner(k), newRing.Owner(k)
		if was != is {
			sources[was] = true
			dests[is] = true
		}
	}
	for id := range sources {
		if dests[id] {
			return fmt.Errorf("cluster: rebalance: node %s both sheds and receives keys; "+
				"decompose the view change into single join/remove steps", id)
		}
	}

	// One admin connection per node, addresses from the union of views
	// (newView wins on conflict — it is where traffic is headed).
	addrs := make(map[string]string)
	for _, n := range oldView.Nodes {
		addrs[n.ID] = n.Addr
	}
	for _, n := range newView.Nodes {
		addrs[n.ID] = n.Addr
	}
	conns := make(map[string]*client.Client)
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	conn := func(id string) (*client.Client, error) {
		if c, ok := conns[id]; ok {
			return c, nil
		}
		c, err := client.DialOptions(addrs[id], cfg.Client)
		if err != nil {
			return nil, fmt.Errorf("cluster: rebalance: node %s: %w", id, err)
		}
		conns[id] = c
		return c, nil
	}

	// (1) Flip and drain every source before any copying starts.
	for _, n := range oldView.Nodes {
		if !sources[n.ID] {
			continue
		}
		src, err := conn(n.ID)
		if err != nil {
			return err
		}
		if _, err := src.ViewSet(ctx, newView); err != nil {
			return fmt.Errorf("cluster: rebalance: view set on source %s: %w", n.ID, err)
		}
		if err := src.Flush(ctx); err != nil {
			return fmt.Errorf("cluster: rebalance: flush source %s: %w", n.ID, err)
		}
	}

	// (2) Copy each source's moved keys to their new owners.
	for _, n := range oldView.Nodes {
		if !sources[n.ID] {
			continue
		}
		if err := copySource(ctx, n.ID, oldRing, newRing, conn, cfg); err != nil {
			return err
		}
	}

	// (3) Durability on the receiving side before anyone reads from it.
	for _, n := range newView.Nodes {
		if !dests[n.ID] {
			continue
		}
		dst, err := conn(n.ID)
		if err != nil {
			return err
		}
		if err := dst.Flush(ctx); err != nil {
			return fmt.Errorf("cluster: rebalance: flush destination %s: %w", n.ID, err)
		}
	}

	// (4) Final flip: everyone not already on the new view adopts it.
	for _, n := range newView.Nodes {
		if sources[n.ID] {
			continue
		}
		c, err := conn(n.ID)
		if err != nil {
			return err
		}
		epoch, err := c.ViewSet(ctx, newView)
		if err != nil {
			return fmt.Errorf("cluster: rebalance: final view set on %s: %w", n.ID, err)
		}
		cfg.logf("rebalance: node %s now at epoch %d", n.ID, epoch)
	}
	return nil
}

// copySource ships one drained source's moved keys, windowed and batched.
func copySource(ctx context.Context, srcID string, oldRing, newRing *Ring,
	conn func(string) (*client.Client, error), cfg RebalanceConfig) error {
	src, err := conn(srcID)
	if err != nil {
		return err
	}
	batches := make(map[string][]wire.RangeEntry)
	shipped := 0
	destN := make(map[string]bool)
	ship := func(destID string) error {
		batch := batches[destID]
		if len(batch) == 0 {
			return nil
		}
		dst, err := conn(destID)
		if err != nil {
			return err
		}
		applied, err := dst.RangeWrite(ctx, batch)
		if err != nil {
			return fmt.Errorf("cluster: rebalance: range write %s -> %s: %w", srcID, destID, err)
		}
		if applied != uint64(len(batch)) {
			return fmt.Errorf("cluster: rebalance: %s applied %d of %d entries", destID, applied, len(batch))
		}
		shipped += len(batch)
		destN[destID] = true
		batches[destID] = batch[:0]
		return nil
	}
	for lo := int64(0); lo < cfg.Keys; lo += int64(cfg.BatchSize) {
		hi := lo + int64(cfg.BatchSize)
		if hi > cfg.Keys {
			hi = cfg.Keys
		}
		entries, err := src.RangeRead(ctx, lo, hi)
		if err != nil {
			return fmt.Errorf("cluster: rebalance: range read %s [%d,%d): %w", srcID, lo, hi, err)
		}
		for _, e := range entries {
			if oldRing.Owner(e.Key) != srcID {
				continue // not this source's key; its own source ships it
			}
			destID := newRing.Owner(e.Key)
			if destID == srcID {
				continue // stays put
			}
			batches[destID] = append(batches[destID], e)
			if len(batches[destID]) >= cfg.BatchSize {
				if err := ship(destID); err != nil {
					return err
				}
			}
		}
	}
	for destID := range batches {
		if err := ship(destID); err != nil {
			return err
		}
	}
	cfg.logf("rebalance: source %s shipped %d keys to %d destinations", srcID, shipped, len(destN))
	return nil
}
