package cluster

import (
	"context"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/server/client"
	"repro/internal/server/wire"
)

// This file is the rebalance coordinator: the admin-plane driver that
// moves key state between nodes when the membership changes, ordered so
// that no acknowledged update is ever lost (DESIGN.md §16).
//
// The phase ordering, global across the cluster:
//
//	(1) ViewSet(new) then Flush on EVERY source (node shedding keys).
//	    From the flip a source answers MOVED for every moved key, so it
//	    cannot acknowledge an update the copy would miss; the flush
//	    barrier drains requests already in flight past the ownership
//	    check, so everything the source ever acknowledged is in its
//	    store and durable.
//	(2) Copy: RangeRead windows of each source's key state, keep the
//	    entries whose owner changes, RangeWrite them to their new
//	    owners. Destinations still hold the old view — they answer MOVED
//	    for the moved keys too — so the copy cannot race a client write.
//	(3) Flush each destination: the copied state is durable before any
//	    client is told to read it.
//	(4) ViewSet(new) on the remaining nodes; destinations start serving.
//
// Step (2)'s safety leans on sources and destinations being disjoint,
// which holds for the operations the cluster performs — a single join
// (old nodes shed only to the new node) or a single removal (only the
// removed node sheds). Rebalance verifies the disjointness against the
// actual key population and refuses composite view changes; decompose
// them into single steps.
//
// Between (1) and (4) a moved key is briefly unavailable — every replica
// bounces it with MOVED — but never inconsistent; the cluster client's
// bounce backoff rides the window out. A coordinator crash before (4)
// leaves moved keys bouncing (unavailable, not lost); rerunning the same
// rebalance completes it. A crash *during* (4) is the one window where a
// rerun must not re-copy — a flipped destination may have accepted fresh
// writes — so finish with ViewSet alone instead of rerunning.

// RebalanceConfig tunes a Rebalance run.
type RebalanceConfig struct {
	// Keys is the customer key population: keys are scanned in [0, Keys).
	Keys int64
	// BatchSize caps entries per RangeRead/RangeWrite request. Zero
	// selects 2048; values above wire.MaxRangeEntries are clamped.
	BatchSize int
	// Client tunes the admin connections dialed to each node.
	Client client.Options
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
	// Obs, when non-nil, records the coordinator's phase timings and copy
	// volume: lruk_cluster_rebalance_phase_seconds{phase=...} per phase,
	// plus keys-moved and ranges-copied counters.
	Obs *obs.Registry
	// Spans, when non-nil together with a sampled Trace, records one
	// rebalance_phase span per coordinator phase (annot = the index into
	// the flip_sources/copy/flush_dests/flip_rest sequence).
	Spans *obs.SpanRecorder
	// Trace, when sampled, is the trace context every admin request of the
	// run is issued under: each node records the ViewSet/Flush/RangeWrite
	// it served as request spans of this one trace, so `lrukcluster trace`
	// reassembles the whole handoff across the cluster.
	Trace obs.TraceContext
}

func (c RebalanceConfig) withDefaults() RebalanceConfig {
	if c.BatchSize <= 0 {
		c.BatchSize = 2048
	}
	if c.BatchSize > wire.MaxRangeEntries {
		c.BatchSize = wire.MaxRangeEntries
	}
	return c
}

func (c RebalanceConfig) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// rebalancePhases names the coordinator's phases in execution order; a
// phase span's annot is the index into this sequence.
var rebalancePhases = [...]string{"flip_sources", "copy", "flush_dests", "flip_rest"}

// RebalancePhaseName maps a rebalance_phase span's annot index back to the
// phase name; out-of-range indices report "unknown".
func RebalancePhaseName(idx int) string {
	if idx < 0 || idx >= len(rebalancePhases) {
		return "unknown"
	}
	return rebalancePhases[idx]
}

// observePhase files one completed phase: a latency observation under the
// phase label, and (under a sampled trace) a rebalance_phase span parented
// on the run's root span.
func (c RebalanceConfig) observePhase(idx int, start time.Time) {
	dur := time.Since(start)
	if c.Obs != nil {
		c.Obs.LatencyHistogram("lruk_cluster_rebalance_phase_seconds",
			"Wall-clock time of each rebalance coordinator phase.",
			obs.Labels{"phase": rebalancePhases[idx]}).Observe(dur.Nanoseconds())
	}
	if c.Spans != nil && c.Trace.Sampled {
		c.Spans.Emit(c.Trace.TraceID, c.Spans.NewSpanID(), c.Trace.SpanID,
			obs.SpanRebalancePhase, start, dur, int64(idx))
	}
}

func (c RebalanceConfig) countMoved(keys, ranges int) {
	if c.Obs == nil {
		return
	}
	c.Obs.Counter("lruk_cluster_rebalance_keys_moved_total",
		"Customer keys copied to a new owner by the rebalance coordinator.", nil).Add(uint64(keys))
	c.Obs.Counter("lruk_cluster_rebalance_ranges_copied_total",
		"RangeWrite batches shipped by the rebalance coordinator.", nil).Add(uint64(ranges))
}

// Rebalance drives the handoff from oldView to newView. Every node in
// oldView must be reachable (a node being *removed* hands its keys off,
// so it must be alive for the transfer); newView must be strictly newer.
func Rebalance(ctx context.Context, oldView, newView wire.View, cfg RebalanceConfig) error {
	cfg = cfg.withDefaults()
	if cfg.Keys <= 0 {
		return fmt.Errorf("cluster: rebalance needs a positive key population, got %d", cfg.Keys)
	}
	if newView.Epoch <= oldView.Epoch {
		return fmt.Errorf("cluster: rebalance target epoch %d not newer than current %d",
			newView.Epoch, oldView.Epoch)
	}
	if len(newView.Nodes) == 0 {
		return fmt.Errorf("cluster: rebalance target view is empty")
	}

	oldRing, newRing := NewRing(oldView), NewRing(newView)

	// Classify the population: which nodes shed keys, which receive.
	// Copy safety requires the two sets to be disjoint (see file doc).
	sources := make(map[string]bool)
	dests := make(map[string]bool)
	for k := int64(0); k < cfg.Keys; k++ {
		was, is := oldRing.Owner(k), newRing.Owner(k)
		if was != is {
			sources[was] = true
			dests[is] = true
		}
	}
	for id := range sources {
		if dests[id] {
			return fmt.Errorf("cluster: rebalance: node %s both sheds and receives keys; "+
				"decompose the view change into single join/remove steps", id)
		}
	}

	// One admin connection per node, addresses from the union of views
	// (newView wins on conflict — it is where traffic is headed).
	addrs := make(map[string]string)
	for _, n := range oldView.Nodes {
		addrs[n.ID] = n.Addr
	}
	for _, n := range newView.Nodes {
		addrs[n.ID] = n.Addr
	}
	conns := make(map[string]*client.Client)
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	conn := func(id string) (*client.Client, error) {
		if c, ok := conns[id]; ok {
			return c, nil
		}
		c, err := client.DialOptions(addrs[id], cfg.Client)
		if err != nil {
			return nil, fmt.Errorf("cluster: rebalance: node %s: %w", id, err)
		}
		conns[id] = c
		return c, nil
	}

	// Under a sampled trace every admin request below carries the trace
	// context on the wire, so the nodes' request spans stitch into one
	// cluster-wide handoff trace.
	if cfg.Trace.Sampled {
		ctx = obs.ContextWithTrace(ctx, cfg.Trace)
	}

	// (1) Flip and drain every source before any copying starts.
	phaseStart := time.Now()
	for _, n := range oldView.Nodes {
		if !sources[n.ID] {
			continue
		}
		src, err := conn(n.ID)
		if err != nil {
			return err
		}
		if _, err := src.ViewSet(ctx, newView); err != nil {
			return fmt.Errorf("cluster: rebalance: view set on source %s: %w", n.ID, err)
		}
		if err := src.Flush(ctx); err != nil {
			return fmt.Errorf("cluster: rebalance: flush source %s: %w", n.ID, err)
		}
	}
	cfg.observePhase(0, phaseStart)

	// (2) Copy each source's moved keys to their new owners.
	phaseStart = time.Now()
	for _, n := range oldView.Nodes {
		if !sources[n.ID] {
			continue
		}
		if err := copySource(ctx, n.ID, oldRing, newRing, conn, cfg); err != nil {
			return err
		}
	}
	cfg.observePhase(1, phaseStart)

	// (3) Durability on the receiving side before anyone reads from it.
	phaseStart = time.Now()
	for _, n := range newView.Nodes {
		if !dests[n.ID] {
			continue
		}
		dst, err := conn(n.ID)
		if err != nil {
			return err
		}
		if err := dst.Flush(ctx); err != nil {
			return fmt.Errorf("cluster: rebalance: flush destination %s: %w", n.ID, err)
		}
	}
	cfg.observePhase(2, phaseStart)

	// (4) Final flip: everyone not already on the new view adopts it.
	phaseStart = time.Now()
	for _, n := range newView.Nodes {
		if sources[n.ID] {
			continue
		}
		c, err := conn(n.ID)
		if err != nil {
			return err
		}
		epoch, err := c.ViewSet(ctx, newView)
		if err != nil {
			return fmt.Errorf("cluster: rebalance: final view set on %s: %w", n.ID, err)
		}
		cfg.logf("rebalance: node %s now at epoch %d", n.ID, epoch)
	}
	cfg.observePhase(3, phaseStart)
	return nil
}

// copySource ships one drained source's moved keys, windowed and batched.
func copySource(ctx context.Context, srcID string, oldRing, newRing *Ring,
	conn func(string) (*client.Client, error), cfg RebalanceConfig) error {
	src, err := conn(srcID)
	if err != nil {
		return err
	}
	batches := make(map[string][]wire.RangeEntry)
	shipped := 0
	ranges := 0
	destN := make(map[string]bool)
	ship := func(destID string) error {
		batch := batches[destID]
		if len(batch) == 0 {
			return nil
		}
		dst, err := conn(destID)
		if err != nil {
			return err
		}
		applied, err := dst.RangeWrite(ctx, batch)
		if err != nil {
			return fmt.Errorf("cluster: rebalance: range write %s -> %s: %w", srcID, destID, err)
		}
		if applied != uint64(len(batch)) {
			return fmt.Errorf("cluster: rebalance: %s applied %d of %d entries", destID, applied, len(batch))
		}
		shipped += len(batch)
		ranges++
		destN[destID] = true
		batches[destID] = batch[:0]
		return nil
	}
	for lo := int64(0); lo < cfg.Keys; lo += int64(cfg.BatchSize) {
		hi := lo + int64(cfg.BatchSize)
		if hi > cfg.Keys {
			hi = cfg.Keys
		}
		entries, err := src.RangeRead(ctx, lo, hi)
		if err != nil {
			return fmt.Errorf("cluster: rebalance: range read %s [%d,%d): %w", srcID, lo, hi, err)
		}
		for _, e := range entries {
			if oldRing.Owner(e.Key) != srcID {
				continue // not this source's key; its own source ships it
			}
			destID := newRing.Owner(e.Key)
			if destID == srcID {
				continue // stays put
			}
			batches[destID] = append(batches[destID], e)
			if len(batches[destID]) >= cfg.BatchSize {
				if err := ship(destID); err != nil {
					return err
				}
			}
		}
	}
	for destID := range batches {
		if err := ship(destID); err != nil {
			return err
		}
	}
	cfg.countMoved(shipped, ranges)
	cfg.logf("rebalance: source %s shipped %d keys to %d destinations", srcID, shipped, len(destN))
	return nil
}
