// Integration tests for the cluster tier: real servers on loopback
// ports, a real cluster client, real rebalances. External test package
// because internal/server imports internal/cluster for the ring.
package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/db"
	"repro/internal/leakcheck"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/server/wire"
)

// testNode is one lrukd node under test: its database, server, and the
// identity it serves under.
type testNode struct {
	id   string
	db   *db.DB
	srv  *server.Server
	addr string
}

// startNodes boots n nodes on random loopback ports, each loading the
// full customer population (every node holds every record; ownership
// decides who *serves* it), then installs the same epoch-1 view on all
// of them. Cleanup tears everything down in reverse.
func startNodes(t *testing.T, n, customers int, dbCfg db.Config, srvCfg server.Config) ([]*testNode, wire.View) {
	t.Helper()
	nodes := make([]*testNode, n)
	for i := range nodes {
		id := fmt.Sprintf("n%d", i)
		database, err := db.Open(dbCfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := database.LoadCustomers(customers); err != nil {
			database.Close()
			t.Fatal(err)
		}
		cfg := srvCfg
		cfg.Addr = "127.0.0.1:0"
		cfg.NodeID = id
		srv := server.New(database, cfg)
		if err := srv.Start(); err != nil {
			database.Close()
			t.Fatal(err)
		}
		nd := &testNode{id: id, db: database, srv: srv, addr: srv.Addr().String()}
		nodes[i] = nd
		t.Cleanup(func() {
			_ = nd.srv.Close() // double-close after a test kill is harmless
			_ = nd.db.Close()
		})
	}
	view := wire.View{Epoch: 1}
	for _, nd := range nodes {
		view.Nodes = append(view.Nodes, wire.NodeAddr{ID: nd.id, Addr: nd.addr})
	}
	ctx := context.Background()
	for _, nd := range nodes {
		cl, err := client.Dial(nd.addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.ViewSet(ctx, view); err != nil {
			cl.Close()
			t.Fatalf("install view on %s: %v", nd.id, err)
		}
		cl.Close()
	}
	return nodes, view
}

func clusterClient(t *testing.T, view wire.View, cfg cluster.Config) *cluster.Client {
	t.Helper()
	cfg.View = view
	cc, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cc.Close() })
	return cc
}

// Routing sanity: a correctly bootstrapped client serves every key with
// zero redirects, spreads requests across all nodes, and the admin fan
// -outs see every member.
func TestClusterClientRoutesWithoutRedirects(t *testing.T) {
	leakcheck.Check(t)
	const customers = 300
	nodes, view := startNodes(t, 3, customers, db.Config{Frames: 64}, server.Config{})
	// Epoch-0 bootstrap spec, as a fresh client would hold it.
	boot := wire.View{Epoch: 0, Nodes: view.Nodes}
	cc := clusterClient(t, boot, cluster.Config{})
	ctx := context.Background()

	for k := int64(0); k < customers; k++ {
		if err := cc.Update(ctx, k, byte(k%200)+1); err != nil {
			t.Fatalf("update key %d: %v", k, err)
		}
	}
	for k := int64(0); k < customers; k++ {
		rec, err := cc.Get(ctx, k)
		if err != nil {
			t.Fatalf("get key %d: %v", k, err)
		}
		if rec[8] != byte(k%200)+1 {
			t.Fatalf("key %d fill = %#x, want %#x", k, rec[8], byte(k%200)+1)
		}
	}

	counters := cc.Counters()
	var moved, transport uint64
	for id, c := range counters {
		moved += c.Moved
		transport += c.Transport
		if c.OK == 0 {
			t.Errorf("node %s served nothing; counters %+v", id, c)
		}
	}
	if moved != 0 || transport != 0 {
		t.Errorf("clean run saw %d moved, %d transport errors", moved, transport)
	}

	if n, err := cc.Scan(ctx); err != nil || n != customers {
		t.Errorf("scan = %d, %v; want %d", n, err, customers)
	}
	if err := cc.Flush(ctx); err != nil {
		t.Errorf("flush fan-out: %v", err)
	}
	stats, err := cc.StatsAll(ctx)
	if err != nil {
		t.Fatalf("stats fan-out: %v", err)
	}
	if len(stats) != len(nodes) {
		t.Errorf("stats for %d nodes, want %d", len(stats), len(nodes))
	}
}

// A stale client (old epoch, wrong ring) is healed by a single MOVED
// redirect: the reply carries the server's whole view, the client adopts
// it, and the retried request lands on the right node.
func TestMovedRedirectPatchesStaleClient(t *testing.T) {
	leakcheck.Check(t)
	const customers = 300
	nodes, view := startNodes(t, 3, customers, db.Config{Frames: 64}, server.Config{})

	// The cluster shrinks to {n0, n1}; every node learns the new view.
	// No handoff needed here: every node already holds every record.
	shrunk, err := cluster.Without(view, "n2")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, nd := range nodes {
		cl, err := client.Dial(nd.addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.ViewSet(ctx, shrunk); err != nil {
			t.Fatal(err)
		}
		cl.Close()
	}

	// The client still believes the 3-node epoch-1 world.
	cc := clusterClient(t, view, cluster.Config{})
	for k := int64(0); k < customers; k++ {
		if _, err := cc.Get(ctx, k); err != nil {
			t.Fatalf("get key %d through stale client: %v", k, err)
		}
	}
	if got := cc.View().Epoch; got != shrunk.Epoch {
		t.Errorf("client epoch = %d after redirects, want %d", got, shrunk.Epoch)
	}
	var moved uint64
	for _, c := range cc.Counters() {
		moved += c.Moved
	}
	if moved == 0 {
		t.Error("stale client saw no MOVED redirects")
	}
	// n2 no longer owns anything: a direct request is refused with MOVED.
	direct, err := client.Dial(nodes[2].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	var sawMoved bool
	for k := int64(0); k < 20; k++ {
		if _, err := direct.Get(ctx, k); errors.Is(err, client.ErrMoved) {
			sawMoved = true
			break
		}
	}
	if !sawMoved {
		t.Error("removed node still serves keys directly")
	}
}

// The zero-acked-loss property, end to end: concurrent writers keep
// updating through the cluster client while a rebalance removes a node.
// Afterwards every key's value is at least the last acknowledged fill —
// an acked update survived the handoff — and never beyond the last
// attempted one.
func TestRebalanceRemoveUnderWrites(t *testing.T) {
	leakcheck.Check(t)
	const (
		customers = 600
		writers   = 4
		rounds    = 40
	)
	nodes, view := startNodes(t, 3, customers, db.Config{Frames: 128}, server.Config{})
	cc := clusterClient(t, view, cluster.Config{
		MaxAttempts: 12,
		BusyBackoff: time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
	})
	ctx := context.Background()

	// Each writer owns a disjoint key slice and advances its keys' fills
	// 1, 2, 3, ... recording the last acked and last attempted value.
	perWriter := customers / writers
	acked := make([]atomic.Uint32, customers)
	attempted := make([]atomic.Uint32, customers)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := int64(w * perWriter)
			for r := 1; r <= rounds; r++ {
				select {
				case <-stop:
					return
				default:
				}
				for k := lo; k < lo+int64(perWriter); k += 7 {
					fill := uint32(r)
					attempted[k].Store(fill)
					if err := cc.Update(ctx, k, byte(fill)); err == nil {
						acked[k].Store(fill)
					}
				}
			}
		}(w)
	}

	// Mid-write, rebalance n2 out of the cluster. Small batches force
	// several copy windows, widening the bounce window the writers must
	// ride out.
	time.Sleep(10 * time.Millisecond)
	shrunk, err := cluster.Without(view, "n2")
	if err != nil {
		t.Fatal(err)
	}
	err = cluster.Rebalance(ctx, view, shrunk, cluster.RebalanceConfig{
		Keys:      customers,
		BatchSize: 128,
		Log:       t.Logf,
	})
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	close(stop)
	wg.Wait()

	// Every write the cluster acknowledged must be visible (monotonic
	// fills make "at least acked" the survival criterion); nothing can
	// exceed the last attempt.
	for k := int64(0); k < customers; k++ {
		a := acked[k].Load()
		if a == 0 {
			continue // never successfully written
		}
		rec, err := cc.Get(ctx, k)
		if err != nil {
			t.Fatalf("get key %d after rebalance: %v", k, err)
		}
		got := uint32(rec[8])
		if got < a || got > attempted[k].Load() {
			t.Errorf("key %d: fill %d outside [acked %d, attempted %d] — acked update lost",
				k, got, a, attempted[k].Load())
		}
	}

	// The removed node refuses its former keys; survivors hold the new
	// epoch.
	direct, err := client.Dial(nodes[2].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	var refused bool
	for k := int64(0); k < 50; k++ {
		if _, err := direct.Get(ctx, k); errors.Is(err, client.ErrMoved) {
			refused = true
			break
		}
	}
	if !refused {
		t.Error("removed node still serving after rebalance")
	}
	for _, nd := range nodes[:2] {
		cl, err := client.Dial(nd.addr)
		if err != nil {
			t.Fatal(err)
		}
		v, err := cl.ViewGet(ctx)
		cl.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.Epoch != shrunk.Epoch || len(v.Nodes) != 2 {
			t.Errorf("node %s holds view %+v, want epoch %d with 2 nodes", nd.id, v, shrunk.Epoch)
		}
	}
}

// The overload story at cluster scale: a burst against tiny nodes sheds
// but completes; a node killed mid-traffic surfaces as transport errors
// until the survivors' view routes around it; the returned node rejoins
// and serves again.
func TestClusterOverloadKillReroute(t *testing.T) {
	leakcheck.Check(t)
	const customers = 300
	dbCfg := db.Config{Frames: 16}
	// Capacity (2 workers + 2 queue slots per node) is the constraint here;
	// slow-disk injection lives in the single-node overload test.
	srvCfg := server.Config{Workers: 2, QueueDepth: 2}
	nodes, view := startNodes(t, 3, customers, dbCfg, srvCfg)
	ctx := context.Background()

	// --- Phase 1: burst beyond 2+2 slots per node; with one attempt and
	// no backoff the shed is visible, with retries it is absorbed. ---
	curt := clusterClient(t, view, cluster.Config{MaxAttempts: 1})
	var wg sync.WaitGroup
	var okN, busyN, otherN atomic.Uint64
	for i := 0; i < 48; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := curt.Get(ctx, int64(i*5%customers))
			switch {
			case err == nil:
				okN.Add(1)
			case errors.Is(err, client.ErrBusy):
				busyN.Add(1)
			default:
				otherN.Add(1)
			}
		}(i)
	}
	wg.Wait()
	t.Logf("burst: %d ok, %d busy, %d other", okN.Load(), busyN.Load(), otherN.Load())
	if otherN.Load() > 0 {
		t.Errorf("burst produced %d non-BUSY failures", otherN.Load())
	}
	if okN.Load() == 0 {
		t.Error("burst completed nothing")
	}
	// Shed is load-dependent; don't require it, but a patient client must
	// absorb whatever the curt one saw: every key, zero errors.
	patient := clusterClient(t, view, cluster.Config{
		MaxAttempts: 10,
		BusyBackoff: time.Millisecond,
	})
	for k := int64(0); k < customers; k++ {
		if _, err := patient.Get(ctx, k); err != nil {
			t.Fatalf("patient get key %d: %v", k, err)
		}
	}

	// --- Phase 2: kill n2. Its keys fail with transport errors; pushing
	// the survivor view onto n0/n1 lets the client's failure-triggered
	// refresh route around the corpse. ---
	if err := nodes[2].srv.Close(); err != nil {
		t.Fatalf("kill n2: %v", err)
	}
	ring := cluster.NewRing(view)
	var deadKey int64 = -1
	for k := int64(0); k < customers; k++ {
		if ring.Owner(k) == "n2" {
			deadKey = k
			break
		}
	}
	if deadKey < 0 {
		t.Fatal("no key owned by n2")
	}
	_, err := patient.Get(ctx, deadKey)
	if err == nil {
		t.Fatal("get of a dead node's key succeeded with no reroute possible")
	}
	if !errors.Is(err, client.ErrTransport) {
		t.Fatalf("dead node error = %v, want ErrTransport", err)
	}

	shrunk, err := cluster.Without(view, "n2")
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range nodes[:2] {
		cl, err := client.Dial(nd.addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.ViewSet(ctx, shrunk); err != nil {
			t.Fatal(err)
		}
		cl.Close()
	}
	// The very next failure against n2 refreshes from a survivor and
	// reroutes; from then on every key is served by the two survivors.
	for k := int64(0); k < customers; k++ {
		if _, err := patient.Get(ctx, k); err != nil {
			t.Fatalf("get key %d after reroute: %v", k, err)
		}
	}
	if got := patient.View().Epoch; got != shrunk.Epoch {
		t.Errorf("client epoch = %d, want %d", got, shrunk.Epoch)
	}

	// --- Phase 3: n2 returns (fresh port, same database), rejoins via a
	// newer view, and serves again. ---
	re := server.New(nodes[2].db, server.Config{
		Addr: "127.0.0.1:0", NodeID: "n2",
		Workers: srvCfg.Workers, QueueDepth: srvCfg.QueueDepth,
	})
	if err := re.Start(); err != nil {
		t.Fatalf("restart n2: %v", err)
	}
	t.Cleanup(func() { _ = re.Close() })
	rejoined, err := cluster.With(shrunk, "n2", re.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	targets := []string{nodes[0].addr, nodes[1].addr, re.Addr().String()}
	for _, addr := range targets {
		cl, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.ViewSet(ctx, rejoined); err != nil {
			t.Fatal(err)
		}
		cl.Close()
	}
	if err := patient.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < customers; k++ {
		if _, err := patient.Get(ctx, k); err != nil {
			t.Fatalf("get key %d after rejoin: %v", k, err)
		}
	}
	// The rejoined node is serving its share again.
	reCl, err := client.Dial(re.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer reCl.Close()
	reply, err := reCl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Server.Requests == 0 {
		t.Error("rejoined node served no requests")
	}
}

// A client bootstrapped from a stale spec that names a dead, removed
// node discovers the truth on its own: the transport failure triggers a
// view refresh from a surviving member.
func TestClientRefreshOnNodeDown(t *testing.T) {
	leakcheck.Check(t)
	const customers = 200
	nodes, view := startNodes(t, 3, customers, db.Config{Frames: 64}, server.Config{})
	ctx := context.Background()

	// The cluster already moved on: n2 was removed (epoch 2 on the
	// survivors) and then died.
	shrunk, err := cluster.Without(view, "n2")
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range nodes[:2] {
		cl, err := client.Dial(nd.addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.ViewSet(ctx, shrunk); err != nil {
			t.Fatal(err)
		}
		cl.Close()
	}
	if err := nodes[2].srv.Close(); err != nil {
		t.Fatal(err)
	}

	// The client's bootstrap spec still lists all three nodes at epoch 0.
	boot := wire.View{Epoch: 0, Nodes: view.Nodes}
	cc := clusterClient(t, boot, cluster.Config{MaxAttempts: 6, BusyBackoff: time.Millisecond})
	for k := int64(0); k < customers; k++ {
		if _, err := cc.Get(ctx, k); err != nil {
			t.Fatalf("get key %d through dead-node bootstrap: %v", k, err)
		}
	}
	if got := cc.View().Epoch; got != shrunk.Epoch {
		t.Errorf("client epoch = %d, want %d", got, shrunk.Epoch)
	}
}
