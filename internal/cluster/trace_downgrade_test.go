package cluster

import (
	"bufio"
	"context"
	"net"
	"testing"

	"repro/internal/obs"
	"repro/internal/server/wire"
)

// TestClusterClientTraceDowngrade drives a traced operation at a fake
// pre-tracing node: the first attempt draws the old server's BadRequest
// and connection close, the cluster client remembers the node as
// untraceable, and the in-flight operation retries untraced and succeeds.
// Later operations dial downgraded from the start.
func TestClusterClientTraceDowngrade(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	tracedFrames := make(chan struct{}, 16)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				br := bufio.NewReader(c)
				for {
					payload, err := wire.ReadFrame(br, wire.MaxFrameDefault)
					if err != nil {
						return
					}
					if len(payload) > 0 && payload[0]&0x80 != 0 {
						tracedFrames <- struct{}{}
						_ = wire.WriteFrame(c, wire.AppendResponse(nil,
							wire.Response{Status: wire.StatusBadRequest, Body: []byte("unknown op")}))
						return
					}
					_ = wire.WriteFrame(c, wire.AppendResponse(nil,
						wire.Response{Status: wire.StatusOK, Body: []byte("record")}))
				}
			}(c)
		}
	}()

	cc, err := New(Config{View: wire.View{
		Epoch: 1,
		Nodes: []wire.NodeAddr{{ID: "n0", Addr: ln.Addr().String()}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	ctx := obs.ContextWithTrace(context.Background(),
		obs.TraceContext{TraceID: 0xfeed, SpanID: 0xbeef, Sampled: true})
	if _, err := cc.Get(ctx, 1); err != nil {
		t.Fatalf("traced GET through downgrade: %v", err)
	}
	if got := len(tracedFrames); got != 1 {
		t.Fatalf("old server saw %d traced frames, want exactly 1", got)
	}
	// A second traced call must go straight through: the node is remembered
	// as untraceable, so no further flagged frame reaches it.
	if _, err := cc.Get(ctx, 2); err != nil {
		t.Fatalf("second GET: %v", err)
	}
	if got := len(tracedFrames); got != 1 {
		t.Fatalf("old server saw %d traced frames after second call, want still 1", got)
	}
	counters := cc.Counters()["n0"]
	if counters.Err != 0 {
		t.Fatalf("downgrade counted as a terminal error: %+v", counters)
	}
	if counters.OK != 2 {
		t.Fatalf("ok count = %d, want 2", counters.OK)
	}
}
