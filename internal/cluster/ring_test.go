package cluster

import (
	"fmt"
	"testing"

	"repro/internal/server/wire"
)

func view(epoch uint64, ids ...string) wire.View {
	v := wire.View{Epoch: epoch}
	for i, id := range ids {
		v.Nodes = append(v.Nodes, wire.NodeAddr{ID: id, Addr: fmt.Sprintf("127.0.0.1:%d", 5000+i)})
	}
	return v
}

// Placement must be a pure function of the node-id set: node order,
// epoch, and addresses must not move a single key.
func TestRingPlacementDeterminism(t *testing.T) {
	const keys = 10000
	base := NewRing(view(1, "n0", "n1", "n2"))
	variants := []wire.View{
		view(1, "n2", "n0", "n1"), // shuffled order
		view(9, "n1", "n2", "n0"), // different epoch, shuffled again
		{Epoch: 1, Nodes: []wire.NodeAddr{ // different addresses entirely
			{ID: "n0", Addr: "10.0.0.1:1"}, {ID: "n1", Addr: "10.0.0.2:1"}, {ID: "n2", Addr: "10.0.0.3:1"},
		}},
	}
	for vi, v := range variants {
		r := NewRing(v)
		for k := int64(0); k < keys; k++ {
			if got, want := r.Owner(k), base.Owner(k); got != want {
				t.Fatalf("variant %d: key %d owned by %q, base says %q", vi, k, got, want)
			}
		}
	}
}

// Adding a node must move keys only TO the new node; every key that
// stays in the old node set must keep its old owner.
func TestRingAddMovesKeysOnlyToNewNode(t *testing.T) {
	const keys = 20000
	before := NewRing(view(1, "n0", "n1", "n2"))
	after := NewRing(view(2, "n0", "n1", "n2", "n3"))
	movedTo := make(map[string]int)
	for k := int64(0); k < keys; k++ {
		was, is := before.Owner(k), after.Owner(k)
		if was == is {
			continue
		}
		if is != "n3" {
			t.Fatalf("key %d moved %q -> %q; only moves to the new node n3 are allowed", k, was, is)
		}
		movedTo[was]++
	}
	total := 0
	for _, c := range movedTo {
		total += c
	}
	if total == 0 {
		t.Fatal("no keys moved to the new node")
	}
	// Roughly a quarter of the keyspace should land on the fourth node.
	if total < keys/8 || total > keys/2 {
		t.Errorf("new node took %d of %d keys; expected roughly a quarter", total, keys)
	}
}

// Removing a node must move only that node's keys; survivors' keys stay.
func TestRingRemoveMovesOnlyRemovedNodesKeys(t *testing.T) {
	const keys = 20000
	before := NewRing(view(1, "n0", "n1", "n2"))
	after := NewRing(view(2, "n0", "n1"))
	for k := int64(0); k < keys; k++ {
		was, is := before.Owner(k), after.Owner(k)
		if was == "n2" {
			if is == "n2" {
				t.Fatalf("key %d still owned by removed node", k)
			}
			continue
		}
		if was != is {
			t.Fatalf("key %d moved %q -> %q though its owner survived", k, was, is)
		}
	}
}

// With VNodes points per node, per-node shares must be reasonably
// balanced: the max/min share ratio over a sequential keyspace stays
// within the bound lrukload's default skew gate assumes.
func TestRingBalance(t *testing.T) {
	const keys = 30000
	r := NewRing(view(1, "n0", "n1", "n2"))
	counts := map[string]int{}
	for k := int64(0); k < keys; k++ {
		counts[r.Owner(k)]++
	}
	if len(counts) != 3 {
		t.Fatalf("owners = %v, want all 3 nodes", counts)
	}
	min, max := keys, 0
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if ratio := float64(max) / float64(min); ratio > 2.0 {
		t.Errorf("share skew %.2f (counts %v) exceeds 2.0", ratio, counts)
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if got := NewRing(wire.View{}).Owner(7); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
	solo := NewRing(view(1, "only"))
	for k := int64(-5); k < 5; k++ {
		if got := solo.Owner(k); got != "only" {
			t.Errorf("single-node ring owner(%d) = %q", k, got)
		}
	}
}

func TestParseSpec(t *testing.T) {
	v, err := ParseSpec("n0=127.0.0.1:4980, n1=127.0.0.1:4981")
	if err != nil {
		t.Fatal(err)
	}
	if v.Epoch != 0 {
		t.Errorf("spec epoch = %d, want 0 (bootstrap hint)", v.Epoch)
	}
	if len(v.Nodes) != 2 || v.Nodes[0].ID != "n0" || v.Nodes[1].Addr != "127.0.0.1:4981" {
		t.Errorf("parsed nodes = %+v", v.Nodes)
	}
	if got := FormatSpec(v); got != "n0=127.0.0.1:4980,n1=127.0.0.1:4981" {
		t.Errorf("FormatSpec = %q", got)
	}
	for _, bad := range []string{"", "n0", "n0=", "=addr", "n0=a,n0=b"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestViewEdits(t *testing.T) {
	v := Bootstrap(view(0, "n0", "n1"))
	if v.Epoch != 1 {
		t.Fatalf("bootstrap epoch = %d, want 1", v.Epoch)
	}
	v2, err := With(v, "n2", "127.0.0.1:9")
	if err != nil {
		t.Fatal(err)
	}
	if v2.Epoch != 2 || len(v2.Nodes) != 3 {
		t.Errorf("With: epoch %d nodes %d", v2.Epoch, len(v2.Nodes))
	}
	if _, err := With(v, "n0", "x"); err == nil {
		t.Error("With accepted a duplicate id")
	}
	v3, err := Without(v2, "n1")
	if err != nil {
		t.Fatal(err)
	}
	if v3.Epoch != 3 || len(v3.Nodes) != 2 {
		t.Errorf("Without: epoch %d nodes %d", v3.Epoch, len(v3.Nodes))
	}
	if _, ok := v3.Node("n1"); ok {
		t.Error("removed node still present")
	}
	if _, err := Without(v, "ghost"); err == nil {
		t.Error("Without accepted an unknown id")
	}
	solo := Bootstrap(view(0, "n0"))
	if _, err := Without(solo, "n0"); err == nil {
		t.Error("Without emptied the cluster")
	}
	// Edits are copies: the original view is untouched.
	if len(v.Nodes) != 2 || v.Epoch != 1 {
		t.Errorf("original view mutated: %+v", v)
	}
}
