package cluster_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/db"
	"repro/internal/leakcheck"
	"repro/internal/obs"
	"repro/internal/server"
)

// TestRebalanceObservability runs a node removal with the coordinator's
// instrumentation armed and checks the run left the promised artifacts: a
// latency observation for each of the four phases, keys-moved and
// ranges-copied counters covering the shipped population, and one
// rebalance_phase span per phase, all under the configured trace and in
// execution order.
func TestRebalanceObservability(t *testing.T) {
	leakcheck.Check(t)
	const customers = 400
	_, view := startNodes(t, 3, customers, db.Config{Frames: 64}, server.Config{})
	shrunk, err := cluster.Without(view, "n2")
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	rec := obs.NewSpanRecorder("coordinator", 64)
	trace := obs.TraceContext{TraceID: rec.NewTraceID(), SpanID: rec.NewSpanID(), Sampled: true}
	err = cluster.Rebalance(context.Background(), view, shrunk, cluster.RebalanceConfig{
		Keys:      customers,
		BatchSize: 64,
		Obs:       reg,
		Spans:     rec,
		Trace:     trace,
	})
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}

	summaries := reg.HistogramSummaries()
	for _, phase := range []string{"flip_sources", "copy", "flush_dests", "flip_rest"} {
		key := fmt.Sprintf(`lruk_cluster_rebalance_phase_seconds{phase=%q}`, phase)
		sum, ok := summaries[key]
		if !ok || sum.Count != 1 {
			t.Errorf("phase %s: want one observation, got %+v (present=%v)", phase, sum, ok)
		}
	}

	keysMoved := reg.Counter("lruk_cluster_rebalance_keys_moved_total", "", nil).Value()
	ranges := reg.Counter("lruk_cluster_rebalance_ranges_copied_total", "", nil).Value()
	if keysMoved == 0 || keysMoved > customers {
		t.Errorf("keys moved = %d, want in (0, %d]", keysMoved, customers)
	}
	if ranges == 0 {
		t.Errorf("ranges copied = %d, want > 0", ranges)
	}

	spans := rec.TraceSpans(trace.TraceID)
	if len(spans) != 4 {
		t.Fatalf("trace holds %d spans, want 4 phase spans: %+v", len(spans), spans)
	}
	for i, s := range spans {
		if s.Kind != obs.SpanRebalancePhase {
			t.Errorf("span %d kind = %v, want rebalance_phase", i, s.Kind)
		}
		if got := cluster.RebalancePhaseName(int(s.Annot)); int(s.Annot) != i {
			t.Errorf("span %d annot = %d (%s), want phase index %d", i, s.Annot, got, i)
		}
		if s.Parent != obs.Hex64(trace.SpanID) {
			t.Errorf("span %d parent = %s, want the run's root span %016x", i, s.Parent, trace.SpanID)
		}
	}
}
