package storage

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/policy"
	"repro/internal/stats"
)

// This file is the integrity half of the fault model: a typed corruption
// error every backend reports the same way, a Repairer seam for targeted
// read-repair, and WithCorruption — a Backend wrapper (sibling of
// WithFaults) that injects seeded media corruption so the pool's
// detect→repair→quarantine paths can be exercised identically over the
// simulator and the durable file store.
//
// The wrapper models corruption as *taint*: a write may, per the armed
// plan, leave its page (or a misdirected neighbour) marked corrupt. A read
// of a tainted page is refused with ErrCorrupt without touching the inner
// backend — exactly what a self-verifying store does when a trailer check
// fails — and the taint clears the way real corruption does: a fresh
// overwrite of the slot, or a successful RepairPage.

// CorruptKind classifies a detected corruption — informational taxonomy;
// every kind is handled the same way (repair, else quarantine).
type CorruptKind uint8

const (
	// CorruptChecksum is a payload/trailer checksum mismatch: bit rot, a
	// torn write the checker cannot distinguish from it, or any other
	// in-place mutilation of the stored bytes.
	CorruptChecksum CorruptKind = iota + 1
	// CorruptTorn is a write torn mid-slot (first sectors new, rest old).
	// Self-verifying stores report it as CorruptChecksum; the injection
	// wrapper labels it distinctly so tests can steer per-kind rules.
	CorruptTorn
	// CorruptMisdirect is a write that landed on the wrong slot: the stored
	// image carries a valid checksum for a different page id.
	CorruptMisdirect
)

// String names the kind for logs and error text.
func (k CorruptKind) String() string {
	switch k {
	case CorruptChecksum:
		return "checksum"
	case CorruptTorn:
		return "torn"
	case CorruptMisdirect:
		return "misdirect"
	}
	return fmt.Sprintf("corrupt-kind-%d", uint8(k))
}

// ErrCorrupt reports that a page's stored image failed integrity
// verification. It is permanent under IsTransient — rereading the same
// rotten bytes cannot change the outcome — so the pool's retry ladder never
// blindly reissues it; the read-repair path handles it instead.
type ErrCorrupt struct {
	Page policy.PageID
	Kind CorruptKind
}

// Error implements error.
func (e *ErrCorrupt) Error() string {
	return fmt.Sprintf("storage: page %d corrupt (%s)", e.Page, e.Kind)
}

// AsCorrupt extracts the typed corruption error from err's chain.
func AsCorrupt(err error) (*ErrCorrupt, bool) {
	var ce *ErrCorrupt
	if errors.As(err, &ce) {
		return ce, true
	}
	return nil, false
}

// IsCorrupt reports whether err's chain contains an ErrCorrupt.
func IsCorrupt(err error) bool {
	_, ok := AsCorrupt(err)
	return ok
}

// Repairer is implemented by backends (and wrappers) that can attempt to
// restore a corrupt page from redundant state — the file backend replays
// the page's most recent image from the WAL tail. A nil return means the
// page now verifies intact; an ErrCorrupt return means no good image was
// available (the caller quarantines the page).
type Repairer interface {
	RepairPage(ctx context.Context, p policy.PageID) error
}

// innerer is the wrapper-unwrapping seam: every Backend wrapper exposes the
// backend it decorates.
type innerer interface{ Inner() Backend }

// RepairerFor walks b's wrapper chain and returns the outermost layer that
// implements Repairer. Layers above it (breaker, metrics, fault injection)
// are deliberately bypassed: repair is its own protocol, not caller I/O.
func RepairerFor(b Backend) (Repairer, bool) {
	for b != nil {
		if r, ok := b.(Repairer); ok {
			return r, true
		}
		iw, ok := b.(innerer)
		if !ok {
			return nil, false
		}
		b = iw.Inner()
	}
	return nil, false
}

// CorruptRule describes one corruption-injection rule, matched against
// successful writes (corruption rides in on the write that the device
// mis-executed). Field semantics mirror FaultRule.
type CorruptRule struct {
	// Pages restricts the rule to the listed page ids; empty matches every
	// page.
	Pages []policy.PageID
	// After lets that many matching writes pass before the rule arms.
	After uint64
	// Count bounds how many corruptions the rule injects once armed; zero
	// means unlimited.
	Count uint64
	// Probability, when in (0, 1), corrupts each armed matching write with
	// this probability from the plan's seeded generator; zero (or ≥ 1)
	// corrupts every one.
	Probability float64
	// Kind labels the injected corruption; zero selects CorruptChecksum.
	// CorruptMisdirect taints the neighbouring page (id XOR 1) — the write
	// landed on the wrong slot — instead of the written page itself.
	Kind CorruptKind
	// Unrepairable marks the taint as beyond RepairPage: the backend's
	// redundant copy is gone too (a WAL already truncated). Only a fresh
	// overwrite of the slot clears it.
	Unrepairable bool
}

type corruptRule struct {
	CorruptRule
	pages    map[policy.PageID]struct{}
	seen     uint64
	injected uint64
}

// CorruptPlan is a deterministic corruption schedule over write operations,
// consulted first-match in declaration order, with all randomness drawn
// from one seeded generator (the same determinism contract as FaultPlan).
// Arm it with Corrupter.SetCorruption.
type CorruptPlan struct {
	mu    sync.Mutex
	rng   *stats.RNG
	rules []corruptRule
}

// NewCorruptPlan returns a plan with the given rules, seeded with seed.
func NewCorruptPlan(seed uint64, rules ...CorruptRule) *CorruptPlan {
	p := &CorruptPlan{rng: stats.NewRNG(seed)}
	for _, r := range rules {
		cr := corruptRule{CorruptRule: r}
		if cr.Kind == 0 {
			cr.Kind = CorruptChecksum
		}
		if len(r.Pages) > 0 {
			cr.pages = make(map[policy.PageID]struct{}, len(r.Pages))
			for _, pg := range r.Pages {
				cr.pages[pg] = struct{}{}
			}
		}
		p.rules = append(p.rules, cr)
	}
	return p
}

// check runs one write through the rules. fired reports whether a rule
// injected corruption; kind/unrepairable describe it. Safe on a nil plan.
func (p *CorruptPlan) check(page policy.PageID) (kind CorruptKind, unrepairable, fired bool) {
	if p == nil {
		return 0, false, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.rules {
		r := &p.rules[i]
		if r.pages != nil {
			if _, ok := r.pages[page]; !ok {
				continue
			}
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		if r.Count > 0 && r.injected >= r.Count {
			continue
		}
		if r.Probability > 0 && r.Probability < 1 && p.rng.Float64() >= r.Probability {
			continue
		}
		r.injected++
		return r.Kind, r.Unrepairable, true
	}
	return 0, false, false
}

// taintState is one page's simulated media damage.
type taintState struct {
	kind         CorruptKind
	unrepairable bool
}

// CorruptStats is the injection wrapper's ledger. Under quiesced detection
// (no read racing a scrub of the same page) it reconciles exactly with the
// pool's integrity counters: Injected == Cleared + Tainted at any quiet
// point, and every Detected read resolves to one pool repair or quarantine.
type CorruptStats struct {
	// Injected counts clean→tainted transitions (a page corrupted while
	// already tainted is one injection, not two).
	Injected uint64
	// Detected counts reads refused with ErrCorrupt.
	Detected uint64
	// Cleared counts tainted→clean transitions, by overwrite or repair.
	Cleared uint64
	// Tainted is the number of currently tainted pages.
	Tainted int
}

// Corrupter is a Backend wrapper that injects seeded media corruption from
// an armed CorruptPlan. Writes pass through to the inner backend and may
// taint their page; reads of tainted pages fail with ErrCorrupt without an
// inner attempt (the inner ledger counts only genuine transfers, mirroring
// WithFaults). It implements Repairer: repairing a repairable taint clears
// it and delegates to the inner backend's Repairer when there is one, so a
// storm over the file store still exercises the real WAL-tail scan.
type Corrupter struct {
	inner Backend
	plan  atomic.Pointer[CorruptPlan]

	mu       sync.Mutex
	taint    map[policy.PageID]taintState
	injected uint64
	detected uint64
	cleared  uint64
}

// WithCorruption wraps inner with a corruption-injection stage (initially
// disarmed).
func WithCorruption(inner Backend) *Corrupter {
	return &Corrupter{inner: inner, taint: make(map[policy.PageID]taintState)}
}

// SetCorruption arms (or, with nil, disarms) a corruption plan. Existing
// taints survive disarming — damage already on the media stays there.
func (c *Corrupter) SetCorruption(p *CorruptPlan) { c.plan.Store(p) }

// Inner returns the wrapped backend.
func (c *Corrupter) Inner() Backend { return c.inner }

// CorruptStats snapshots the injection ledger.
func (c *Corrupter) CorruptStats() CorruptStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CorruptStats{
		Injected: c.injected,
		Detected: c.detected,
		Cleared:  c.cleared,
		Tainted:  len(c.taint),
	}
}

// TaintedPages returns the ids of currently tainted pages, in no
// particular order.
func (c *Corrupter) TaintedPages() []policy.PageID {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]policy.PageID, 0, len(c.taint))
	for id := range c.taint {
		ids = append(ids, id)
	}
	return ids
}

// Read implements Backend: a tainted page is refused with ErrCorrupt, the
// detection a self-verifying store would make; clean pages pass through.
func (c *Corrupter) Read(ctx context.Context, p policy.PageID, buf []byte) error {
	c.mu.Lock()
	ts, tainted := c.taint[p]
	if tainted {
		c.detected++
	}
	c.mu.Unlock()
	if tainted {
		return fmt.Errorf("read page %d: %w", p, &ErrCorrupt{Page: p, Kind: ts.kind})
	}
	return c.inner.Read(ctx, p, buf)
}

// Write implements Backend. A successful write either corrupts per the
// armed plan (tainting the page, or its XOR-1 neighbour for misdirects) or
// — like a real overwrite of a damaged slot — clears the page's taint.
func (c *Corrupter) Write(ctx context.Context, p policy.PageID, buf []byte) error {
	if err := c.inner.Write(ctx, p, buf); err != nil {
		return err
	}
	kind, unrepairable, fired := c.plan.Load().check(p)
	c.mu.Lock()
	if fired {
		target := p
		if kind == CorruptMisdirect {
			target = p ^ 1
		}
		if _, already := c.taint[target]; !already {
			c.injected++
		}
		c.taint[target] = taintState{kind: kind, unrepairable: unrepairable}
	} else if _, ok := c.taint[p]; ok {
		delete(c.taint, p)
		c.cleared++
	}
	c.mu.Unlock()
	return nil
}

// RepairPage implements Repairer. A repairable taint clears (the simulated
// damage sat over an intact inner image); an unrepairable one is reported
// back as ErrCorrupt. Either way a clean page delegates to the inner
// backend's Repairer, so real on-media corruption under the wrapper is
// still repaired — and real repair machinery still runs in storms.
func (c *Corrupter) RepairPage(ctx context.Context, p policy.PageID) error {
	c.mu.Lock()
	if ts, ok := c.taint[p]; ok {
		if ts.unrepairable {
			c.mu.Unlock()
			return fmt.Errorf("repair page %d: %w", p, &ErrCorrupt{Page: p, Kind: ts.kind})
		}
		delete(c.taint, p)
		c.cleared++
	}
	c.mu.Unlock()
	if r, ok := RepairerFor(c.inner); ok {
		return r.RepairPage(ctx, p)
	}
	return nil
}

// Allocate implements Backend.
func (c *Corrupter) Allocate() (policy.PageID, error) { return c.inner.Allocate() }

// ChargeFault implements FaultCharger by delegation, so a fault wrapper
// stacked outside the corrupter still prices faulted operations on a
// backend that can (the simulator); a no-op otherwise.
func (c *Corrupter) ChargeFault(p policy.PageID) {
	if ch, ok := c.inner.(FaultCharger); ok {
		ch.ChargeFault(p)
	}
}

// Deallocate implements Backend, dropping any taint with the page.
func (c *Corrupter) Deallocate(p policy.PageID) error {
	c.mu.Lock()
	if _, ok := c.taint[p]; ok {
		delete(c.taint, p)
		c.cleared++
	}
	c.mu.Unlock()
	return c.inner.Deallocate(p)
}

// Flush implements Backend.
func (c *Corrupter) Flush(ctx context.Context) error { return c.inner.Flush(ctx) }

// Stats implements Backend.
func (c *Corrupter) Stats() Stats { return c.inner.Stats() }

// StripeOf implements Backend.
func (c *Corrupter) StripeOf(p policy.PageID) int { return c.inner.StripeOf(p) }

// NumStripes implements Backend.
func (c *Corrupter) NumStripes() int { return c.inner.NumStripes() }

// NumPages implements Backend.
func (c *Corrupter) NumPages() int { return c.inner.NumPages() }

// Close implements Backend.
func (c *Corrupter) Close() error { return c.inner.Close() }
