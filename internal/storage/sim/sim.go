// Package sim implements storage.Backend as the simulated database disk of
// the paper's setting: a page store in memory with explicit read/write
// operations, allocation, and a service-time model (seek + rotational
// latency + transfer, with cheap sequential access) so experiments can
// report simulated I/O cost next to hit ratios. The "Five Minute Rule"
// economics the paper builds on ([GRAYPUT]) are about exactly this trade:
// memory buffers versus disk arm time.
//
// Pages live in memory; durability is storage/file's job. The manager is
// safe for concurrent use, and concurrently at that: the page store is
// partitioned into independently latched stripes keyed by PageID hash, and
// all counters are atomics, so reads and writes to different pages proceed
// in parallel. The optional ServiceModel.Delay hook injects real latency
// per operation (outside every latch), letting benchmarks exercise a pool's
// ability to overlap concurrent I/O. Fault injection lives in the
// backend-agnostic storage.WithFaults wrapper; the manager implements
// storage.FaultCharger so a faulted operation still costs arm time and
// still runs the Delay hook.
package sim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/policy"
	"repro/internal/storage"
)

// PageSize is the simulated page size in bytes (storage.PageSize).
const PageSize = storage.PageSize

// numStripes is the number of independently latched page-store partitions.
const numStripes = storage.DefaultStripes

// ServiceModel prices disk operations in simulated microseconds.
type ServiceModel struct {
	// SeekMicros is the arm seek plus rotational latency for a random
	// access. Default 12000 (a circa-1993 disk; the absolute value only
	// scales reports).
	SeekMicros int64
	// TransferMicros is the per-page transfer time. Default 400.
	TransferMicros int64
	// Delay, when non-nil, is invoked after each read or write with the
	// operation's priced service time, outside all locks. Injecting e.g. a
	// scaled time.Sleep here turns the accounting-only model into real
	// latency, so concurrent callers genuinely overlap their I/O — the
	// condition under which latch partitioning pays off.
	Delay func(serviceMicros int64)
}

func (m ServiceModel) withDefaults() ServiceModel {
	if m.SeekMicros == 0 {
		m.SeekMicros = 12000
	}
	if m.TransferMicros == 0 {
		m.TransferMicros = 400
	}
	return m
}

// Manager is the simulated disk.
type Manager struct {
	model   ServiceModel
	stripes [numStripes]stripe
	nextID  atomic.Int64
	// lastOp is the page id of the most recent priced operation, for
	// sequential-access pricing; -1 means none yet. Under concurrency the
	// sequential discount is approximate (operation order is whatever the
	// hardware interleaves); single-threaded it is exact.
	lastOp atomic.Int64

	reads         atomic.Uint64
	writes        atomic.Uint64
	allocated     atomic.Uint64
	deallocated   atomic.Uint64
	serviceMicros atomic.Int64
}

type stripe struct {
	mu    sync.RWMutex
	pages map[policy.PageID][]byte
	// Pad so adjacent stripe latches do not share a cache line.
	_ [24]byte
}

// New returns an empty simulated disk with the given service model (zero
// value for defaults).
func New(model ServiceModel) *Manager {
	m := &Manager{model: model.withDefaults()}
	m.lastOp.Store(int64(policy.InvalidPage))
	for i := range m.stripes {
		m.stripes[i].pages = make(map[policy.PageID][]byte)
	}
	return m
}

func (m *Manager) stripe(p policy.PageID) *stripe {
	return &m.stripes[m.StripeOf(p)]
}

// StripeOf implements storage.Backend.
func (m *Manager) StripeOf(p policy.PageID) int {
	return storage.StripeIndex(p, numStripes)
}

// NumStripes implements storage.Backend.
func (m *Manager) NumStripes() int { return numStripes }

// Allocate reserves a fresh zeroed page and returns its id. The simulated
// allocator never fails; the error return satisfies storage.Backend.
func (m *Manager) Allocate() (policy.PageID, error) {
	id := policy.PageID(m.nextID.Add(1) - 1)
	s := m.stripe(id)
	s.mu.Lock()
	s.pages[id] = make([]byte, PageSize)
	s.mu.Unlock()
	m.allocated.Add(1)
	return id, nil
}

// Deallocate releases a page. Further access to it fails.
func (m *Manager) Deallocate(p policy.PageID) error {
	s := m.stripe(p)
	s.mu.Lock()
	_, ok := s.pages[p]
	delete(s.pages, p)
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("deallocate page %d: %w", p, storage.ErrPageNotAllocated)
	}
	m.deallocated.Add(1)
	return nil
}

// Read copies page p into buf, which must hold PageSize bytes. The context
// is ignored: simulated I/O has no blocking point to interrupt.
func (m *Manager) Read(_ context.Context, p policy.PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("sim: read buffer of %d bytes, want %d", len(buf), PageSize)
	}
	s := m.stripe(p)
	s.mu.RLock()
	data, ok := s.pages[p]
	if ok {
		copy(buf, data)
	}
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("read page %d: %w", p, storage.ErrPageNotAllocated)
	}
	m.reads.Add(1)
	m.charge(p)
	return nil
}

// Write stores buf as the new contents of page p.
func (m *Manager) Write(_ context.Context, p policy.PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("sim: write buffer of %d bytes, want %d", len(buf), PageSize)
	}
	s := m.stripe(p)
	s.mu.Lock()
	data, ok := s.pages[p]
	if ok {
		copy(data, buf)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("write page %d: %w", p, storage.ErrPageNotAllocated)
	}
	m.writes.Add(1)
	m.charge(p)
	return nil
}

// ChargeFault implements storage.FaultCharger: a failed I/O still costs
// arm time, and charging runs the Delay hook, so tests can park a doomed
// read like a successful one.
func (m *Manager) ChargeFault(p policy.PageID) { m.charge(p) }

// charge prices one operation on page p — sequential successors skip the
// seek — and runs the injected delay, if any, outside all locks.
func (m *Manager) charge(p policy.PageID) {
	cost := m.model.TransferMicros
	if last := m.lastOp.Swap(int64(p)); last < 0 || int64(p) != last+1 {
		cost += m.model.SeekMicros
	}
	m.serviceMicros.Add(cost)
	if m.model.Delay != nil {
		m.model.Delay(cost)
	}
}

// Flush implements storage.Backend: the simulator has no volatile state
// below its page maps, so the durability barrier is a no-op.
func (m *Manager) Flush(context.Context) error { return nil }

// Close implements storage.Backend (no resources to release).
func (m *Manager) Close() error { return nil }

// Stats returns a snapshot of cumulative activity. Under concurrent load
// the counters are individually exact but not mutually consistent (they
// are read without a global latch). Fault counters are maintained by the
// storage.WithFaults wrapper, not here.
func (m *Manager) Stats() storage.Stats {
	return storage.Stats{
		Reads:         m.reads.Load(),
		Writes:        m.writes.Load(),
		Allocated:     m.allocated.Load(),
		Deallocated:   m.deallocated.Load(),
		ServiceMicros: m.serviceMicros.Load(),
	}
}

// NumPages returns the number of currently allocated pages.
func (m *Manager) NumPages() int {
	n := 0
	for i := range m.stripes {
		s := &m.stripes[i]
		s.mu.RLock()
		n += len(s.pages)
		s.mu.RUnlock()
	}
	return n
}
