package sim

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/policy"
	"repro/internal/storage"
)

var ctx = context.Background()

func TestAllocateReadWrite(t *testing.T) {
	m := New(ServiceModel{})
	p := storage.MustAllocate(m)
	buf := make([]byte, PageSize)
	if err := m.Read(ctx, p, buf); err != nil {
		t.Fatalf("read fresh page: %v", err)
	}
	if !bytes.Equal(buf, make([]byte, PageSize)) {
		t.Error("fresh page not zeroed")
	}
	data := make([]byte, PageSize)
	copy(data, []byte("hello, buffer manager"))
	if err := m.Write(ctx, p, data); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := m.Read(ctx, p, buf); err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(buf, data) {
		t.Error("read back differs from write")
	}
}

func TestDistinctPages(t *testing.T) {
	m := New(ServiceModel{})
	a, b := storage.MustAllocate(m), storage.MustAllocate(m)
	if a == b {
		t.Fatal("Allocate returned duplicate ids")
	}
	da := make([]byte, PageSize)
	da[0] = 'a'
	if err := m.Write(ctx, a, da); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := m.Read(ctx, b, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Error("write to one page leaked into another")
	}
	if m.NumPages() != 2 {
		t.Errorf("NumPages = %d, want 2", m.NumPages())
	}
}

func TestUnallocatedAccess(t *testing.T) {
	m := New(ServiceModel{})
	buf := make([]byte, PageSize)
	if err := m.Read(ctx, 999, buf); !errors.Is(err, storage.ErrPageNotAllocated) {
		t.Errorf("read unallocated: %v", err)
	}
	if err := m.Write(ctx, 999, buf); !errors.Is(err, storage.ErrPageNotAllocated) {
		t.Errorf("write unallocated: %v", err)
	}
	if err := m.Deallocate(999); !errors.Is(err, storage.ErrPageNotAllocated) {
		t.Errorf("deallocate unallocated: %v", err)
	}
}

func TestDeallocate(t *testing.T) {
	m := New(ServiceModel{})
	p := storage.MustAllocate(m)
	if err := m.Deallocate(p); err != nil {
		t.Fatal(err)
	}
	if err := m.Read(ctx, p, make([]byte, PageSize)); !errors.Is(err, storage.ErrPageNotAllocated) {
		t.Errorf("read after deallocate: %v", err)
	}
	s := m.Stats()
	if s.Allocated != 1 || s.Deallocated != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestBadBufferSize(t *testing.T) {
	m := New(ServiceModel{})
	p := storage.MustAllocate(m)
	if err := m.Read(ctx, p, make([]byte, 10)); err == nil {
		t.Error("short read buffer accepted")
	}
	if err := m.Write(ctx, p, make([]byte, PageSize+1)); err == nil {
		t.Error("long write buffer accepted")
	}
}

func TestServiceModelSequentialDiscount(t *testing.T) {
	m := New(ServiceModel{SeekMicros: 10000, TransferMicros: 100})
	for i := 0; i < 10; i++ {
		m.Allocate()
	}
	buf := make([]byte, PageSize)
	// Random-order reads: every op pays the seek.
	_ = m.Read(ctx, 5, buf)
	_ = m.Read(ctx, 2, buf)
	_ = m.Read(ctx, 8, buf)
	random := m.Stats().ServiceMicros
	if want := int64(3 * 10100); random != want {
		t.Errorf("random reads cost %d, want %d", random, want)
	}
	// Sequential reads 0..9: only the first pays the seek.
	m2 := New(ServiceModel{SeekMicros: 10000, TransferMicros: 100})
	for i := 0; i < 10; i++ {
		m2.Allocate()
	}
	for i := 0; i < 10; i++ {
		_ = m2.Read(ctx, policy.PageID(i), buf)
	}
	seq := m2.Stats().ServiceMicros
	if want := int64(10000 + 10*100); seq != want {
		t.Errorf("sequential reads cost %d, want %d", seq, want)
	}
}

func TestStatsCounters(t *testing.T) {
	m := New(ServiceModel{})
	p := storage.MustAllocate(m)
	buf := make([]byte, PageSize)
	for i := 0; i < 3; i++ {
		_ = m.Read(ctx, p, buf)
	}
	for i := 0; i < 2; i++ {
		_ = m.Write(ctx, p, buf)
	}
	s := m.Stats()
	if s.Reads != 3 || s.Writes != 2 {
		t.Errorf("stats %+v, want 3 reads 2 writes", s)
	}
}

func TestConcurrentAccess(t *testing.T) {
	m := New(ServiceModel{})
	const pages = 32
	for i := 0; i < pages; i++ {
		m.Allocate()
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, PageSize)
			for i := 0; i < 1000; i++ {
				p := policy.PageID((g*7 + i) % pages)
				if i%3 == 0 {
					buf[0] = byte(g)
					if err := m.Write(ctx, p, buf); err != nil {
						t.Error(err)
						return
					}
				} else if err := m.Read(ctx, p, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := m.Stats().Reads + m.Stats().Writes; got != 8000 {
		t.Errorf("total ops %d, want 8000", got)
	}
}

// TestDelayHookReceivesServiceTime verifies the injectable latency model:
// the hook fires once per priced operation with that operation's service
// micros, summing to the manager's ServiceMicros counter.
func TestDelayHookReceivesServiceTime(t *testing.T) {
	var calls int
	var total int64
	m := New(ServiceModel{
		SeekMicros:     10000,
		TransferMicros: 100,
		Delay: func(micros int64) {
			calls++
			total += micros
		},
	})
	for i := 0; i < 4; i++ {
		m.Allocate()
	}
	buf := make([]byte, PageSize)
	_ = m.Read(ctx, 3, buf)  // seek + transfer
	_ = m.Write(ctx, 0, buf) // seek + transfer
	_ = m.Read(ctx, 1, buf)  // sequential: transfer only
	if calls != 3 {
		t.Errorf("Delay fired %d times, want 3", calls)
	}
	if want := m.Stats().ServiceMicros; total != want {
		t.Errorf("Delay saw %d micros total, ServiceMicros is %d", total, want)
	}
	if want := int64(2*10100 + 100); total != want {
		t.Errorf("Delay saw %d micros, want %d", total, want)
	}
}

// TestConcurrentAllocateDeallocate races page lifecycle against I/O across
// stripes; counters must balance and no page may leak.
func TestConcurrentAllocateDeallocate(t *testing.T) {
	m := New(ServiceModel{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, PageSize)
			for i := 0; i < 500; i++ {
				p := storage.MustAllocate(m)
				buf[0] = byte(i)
				if err := m.Write(ctx, p, buf); err != nil {
					t.Error(err)
					return
				}
				if err := m.Read(ctx, p, buf); err != nil {
					t.Error(err)
					return
				}
				if err := m.Deallocate(p); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	s := m.Stats()
	if s.Allocated != 4000 || s.Deallocated != 4000 {
		t.Errorf("alloc/dealloc %d/%d, want 4000/4000", s.Allocated, s.Deallocated)
	}
	if got := m.NumPages(); got != 0 {
		t.Errorf("NumPages = %d after balanced lifecycle, want 0", got)
	}
}

func TestStripeOf(t *testing.T) {
	m := New(ServiceModel{})
	if m.NumStripes() != numStripes {
		t.Fatalf("NumStripes = %d, want %d", m.NumStripes(), numStripes)
	}
	seen := make(map[int]bool)
	for p := 0; p < 4096; p++ {
		idx := m.StripeOf(policy.PageID(p))
		if idx < 0 || idx >= numStripes {
			t.Fatalf("StripeOf(%d) = %d, outside [0, %d)", p, idx, numStripes)
		}
		seen[idx] = true
		if got := m.stripe(policy.PageID(p)); got != &m.stripes[idx] {
			t.Fatalf("stripe(%d) disagrees with StripeOf", p)
		}
	}
	if len(seen) != numStripes {
		t.Errorf("4096 sequential pages hit only %d/%d stripes", len(seen), numStripes)
	}
}

// TestBackendInterface pins that the manager satisfies the full contract,
// durable extras excluded.
func TestBackendInterface(t *testing.T) {
	var b storage.Backend = New(ServiceModel{})
	if err := b.Flush(ctx); err != nil {
		t.Errorf("Flush: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if _, ok := b.(storage.DurableBackend); ok {
		t.Error("simulator claims durability")
	}
}
