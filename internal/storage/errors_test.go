package storage

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/policy"
)

func TestIsTransient(t *testing.T) {
	permanent := errors.New("disk: head crash")
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"injected fault", ErrInjectedFault, true},
		{"wrapped injected fault", fmt.Errorf("read page 7: %w", ErrInjectedFault), true},
		{"page not allocated", ErrPageNotAllocated, false},
		{"breaker open", ErrUnavailable, false},
		{"unknown error", permanent, false},
		{"marked transient", MarkTransient(permanent), true},
		{"wrapped marked transient", fmt.Errorf("write page 3: %w", MarkTransient(permanent)), true},
	}
	for _, tc := range cases {
		if got := IsTransient(tc.err); got != tc.want {
			t.Errorf("%s: IsTransient = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestMarkTransientNil(t *testing.T) {
	if MarkTransient(nil) != nil {
		t.Error("MarkTransient(nil) != nil")
	}
}

// TestMarkTransientUnwraps: marking must not hide the underlying error from
// errors.Is, so callers can both retry on transience and still match the
// root cause.
func TestMarkTransientUnwraps(t *testing.T) {
	base := errors.New("scsi: bus reset")
	err := MarkTransient(base)
	if !errors.Is(err, base) {
		t.Error("marked error does not unwrap to its cause")
	}
	if err.Error() != base.Error() {
		t.Errorf("marked error message %q, want %q", err.Error(), base.Error())
	}
}

// TestStripeIndex pins range, determinism and dispersion of the shared
// stripe hash every backend uses.
func TestStripeIndex(t *testing.T) {
	const n = 32
	seen := make(map[int]bool)
	for p := 0; p < 4096; p++ {
		idx := StripeIndex(policy.PageID(p), n)
		if idx < 0 || idx >= n {
			t.Fatalf("StripeIndex(%d) = %d, outside [0, %d)", p, idx, n)
		}
		if idx != StripeIndex(policy.PageID(p), n) {
			t.Fatalf("StripeIndex(%d) not deterministic", p)
		}
		seen[idx] = true
	}
	if len(seen) != n {
		t.Errorf("4096 sequential pages hit only %d/%d stripes", len(seen), n)
	}
}
