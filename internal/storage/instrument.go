package storage

import (
	"context"
	"time"

	"repro/internal/obs"
	"repro/internal/policy"
)

// Metrics are a backend's optional latency instruments: wall-clock Read and
// Write time — inclusive of latch waits, injected delay, and (on the file
// backend) WAL group commit, which is the point: the histogram shows what
// callers actually experienced, split by stripe so one slow or
// breaker-tripped device region stands out from the rest. Each slice must
// be nil or hold NumStripes histograms.
type Metrics struct {
	ReadLatency  []*obs.Histogram
	WriteLatency []*obs.Histogram
}

// Instrumented is a Backend wrapper recording per-stripe read/write latency
// histograms, and — when a span recorder is attached — disk_read /
// disk_write spans for operations running under a sampled trace context.
// Faulted operations are recorded too (stack it outside WithFaults): an
// error return still occupied the caller for that long.
type Instrumented struct {
	inner Backend
	m     Metrics
	spans *obs.SpanRecorder
}

// WithMetrics wraps inner with latency instrumentation. A nil histogram
// slice disables that side's timing entirely.
func WithMetrics(inner Backend, m Metrics) *Instrumented {
	return &Instrumented{inner: inner, m: m}
}

// WithSpans arms the wrapper's span recording: sampled reads and writes
// leave disk_read / disk_write spans (annot = page id) in rec. Returns
// the receiver for chaining.
func (in *Instrumented) WithSpans(rec *obs.SpanRecorder) *Instrumented {
	in.spans = rec
	return in
}

// Inner returns the wrapped backend.
func (in *Instrumented) Inner() Backend { return in.inner }

// Read implements Backend.
func (in *Instrumented) Read(ctx context.Context, p policy.PageID, buf []byte) error {
	if in.m.ReadLatency == nil && in.spans == nil {
		return in.inner.Read(ctx, p, buf)
	}
	span := in.spans.Start(obs.TraceFrom(ctx), obs.SpanDiskRead)
	start := time.Now()
	err := in.inner.Read(ctx, p, buf)
	if in.m.ReadLatency != nil {
		in.m.ReadLatency[in.inner.StripeOf(p)].ObserveSince(start)
	}
	span.Finish(int64(p))
	return err
}

// Write implements Backend.
func (in *Instrumented) Write(ctx context.Context, p policy.PageID, buf []byte) error {
	if in.m.WriteLatency == nil && in.spans == nil {
		return in.inner.Write(ctx, p, buf)
	}
	span := in.spans.Start(obs.TraceFrom(ctx), obs.SpanDiskWrite)
	start := time.Now()
	err := in.inner.Write(ctx, p, buf)
	if in.m.WriteLatency != nil {
		in.m.WriteLatency[in.inner.StripeOf(p)].ObserveSince(start)
	}
	span.Finish(int64(p))
	return err
}

// Allocate implements Backend.
func (in *Instrumented) Allocate() (policy.PageID, error) { return in.inner.Allocate() }

// Deallocate implements Backend.
func (in *Instrumented) Deallocate(p policy.PageID) error { return in.inner.Deallocate(p) }

// Flush implements Backend.
func (in *Instrumented) Flush(ctx context.Context) error { return in.inner.Flush(ctx) }

// Stats implements Backend.
func (in *Instrumented) Stats() Stats { return in.inner.Stats() }

// StripeOf implements Backend.
func (in *Instrumented) StripeOf(p policy.PageID) int { return in.inner.StripeOf(p) }

// NumStripes implements Backend.
func (in *Instrumented) NumStripes() int { return in.inner.NumStripes() }

// NumPages implements Backend.
func (in *Instrumented) NumPages() int { return in.inner.NumPages() }

// Close implements Backend.
func (in *Instrumented) Close() error { return in.inner.Close() }
