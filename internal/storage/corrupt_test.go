package storage_test

import (
	"testing"

	"repro/internal/policy"
	"repro/internal/storage"
	"repro/internal/storage/sim"
)

// corruptTestBackend wraps a fresh simulator in the corruption stage and
// allocates the requested pages.
func corruptTestBackend(t *testing.T, pages int) (*storage.Corrupter, []policy.PageID) {
	t.Helper()
	c := storage.WithCorruption(sim.New(sim.ServiceModel{}))
	ids := make([]policy.PageID, pages)
	for i := range ids {
		ids[i] = storage.MustAllocate(c)
	}
	return c, ids
}

func TestCorruptTaintAndDetect(t *testing.T) {
	c, ids := corruptTestBackend(t, 2)
	c.SetCorruption(storage.NewCorruptPlan(1, storage.CorruptRule{Pages: []policy.PageID{ids[0]}}))
	buf := make([]byte, storage.PageSize)
	if err := c.Write(ctx, ids[0], buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	// The write landed (inner ledger counts it) but tainted the page.
	err := c.Read(ctx, ids[0], buf)
	ce, ok := storage.AsCorrupt(err)
	if !ok || ce.Page != ids[0] || ce.Kind != storage.CorruptChecksum {
		t.Fatalf("read of tainted page: %v, want ErrCorrupt{%d, checksum}", err, ids[0])
	}
	if err := c.Read(ctx, ids[1], buf); err != nil {
		t.Fatalf("read of clean page: %v", err)
	}
	// Tainted reads never reach the inner backend: only the untainted read
	// and none of the refused ones count as genuine transfers.
	if s := c.Stats(); s.Reads != 1 || s.Writes != 1 {
		t.Errorf("inner stats %+v, want exactly 1 read and 1 write", s)
	}
	if s := c.CorruptStats(); s.Injected != 1 || s.Detected != 1 || s.Cleared != 0 || s.Tainted != 1 {
		t.Errorf("corrupt stats %+v, want injected=1 detected=1 cleared=0 tainted=1", s)
	}
}

func TestCorruptOverwriteClears(t *testing.T) {
	c, ids := corruptTestBackend(t, 1)
	c.SetCorruption(storage.NewCorruptPlan(1, storage.CorruptRule{Count: 1, Unrepairable: true}))
	buf := make([]byte, storage.PageSize)
	if err := c.Write(ctx, ids[0], buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := c.Read(ctx, ids[0], buf); !storage.IsCorrupt(err) {
		t.Fatalf("read after taint: %v, want corrupt", err)
	}
	// A fresh overwrite clears even an unrepairable taint (rule exhausted,
	// so the second write does not re-fire).
	if err := c.Write(ctx, ids[0], buf); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if err := c.Read(ctx, ids[0], buf); err != nil {
		t.Fatalf("read after overwrite: %v, want clean", err)
	}
	if s := c.CorruptStats(); s.Injected != 1 || s.Cleared != 1 || s.Tainted != 0 {
		t.Errorf("corrupt stats %+v, want injected=1 cleared=1 tainted=0", s)
	}
}

func TestCorruptRepairPage(t *testing.T) {
	c, ids := corruptTestBackend(t, 2)
	c.SetCorruption(storage.NewCorruptPlan(1,
		storage.CorruptRule{Pages: []policy.PageID{ids[0]}, Count: 1},
		storage.CorruptRule{Pages: []policy.PageID{ids[1]}, Count: 1, Unrepairable: true},
	))
	buf := make([]byte, storage.PageSize)
	for _, id := range ids {
		if err := c.Write(ctx, id, buf); err != nil {
			t.Fatalf("write %d: %v", id, err)
		}
	}
	// Repairable: clears, read succeeds afterwards.
	if err := c.RepairPage(ctx, ids[0]); err != nil {
		t.Fatalf("repair of repairable taint: %v", err)
	}
	if err := c.Read(ctx, ids[0], buf); err != nil {
		t.Fatalf("read after repair: %v", err)
	}
	// Unrepairable: RepairPage reports the corruption back, taint stays.
	if err := c.RepairPage(ctx, ids[1]); !storage.IsCorrupt(err) {
		t.Fatalf("repair of unrepairable taint: %v, want corrupt", err)
	}
	if err := c.Read(ctx, ids[1], buf); !storage.IsCorrupt(err) {
		t.Fatalf("read of unrepairable page: %v, want corrupt", err)
	}
	if s := c.CorruptStats(); s.Injected != 2 || s.Cleared != 1 || s.Tainted != 1 {
		t.Errorf("corrupt stats %+v, want injected=2 cleared=1 tainted=1", s)
	}
}

func TestCorruptMisdirectTaintsNeighbour(t *testing.T) {
	c, ids := corruptTestBackend(t, 2)
	c.SetCorruption(storage.NewCorruptPlan(1, storage.CorruptRule{
		Pages: []policy.PageID{ids[0]}, Kind: storage.CorruptMisdirect, Count: 1}))
	buf := make([]byte, storage.PageSize)
	if err := c.Write(ctx, ids[0], buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	// The written page stays readable; its XOR-1 neighbour took the damage.
	if err := c.Read(ctx, ids[0], buf); err != nil {
		t.Fatalf("read of written page: %v", err)
	}
	err := c.Read(ctx, ids[0]^1, buf)
	ce, ok := storage.AsCorrupt(err)
	if !ok || ce.Kind != storage.CorruptMisdirect {
		t.Fatalf("read of neighbour: %v, want ErrCorrupt misdirect", err)
	}
}

func TestCorruptDeallocateClears(t *testing.T) {
	c, ids := corruptTestBackend(t, 1)
	c.SetCorruption(storage.NewCorruptPlan(1, storage.CorruptRule{Unrepairable: true}))
	buf := make([]byte, storage.PageSize)
	if err := c.Write(ctx, ids[0], buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := c.Deallocate(ids[0]); err != nil {
		t.Fatalf("deallocate: %v", err)
	}
	if s := c.CorruptStats(); s.Injected != 1 || s.Cleared != 1 || s.Tainted != 0 {
		t.Errorf("corrupt stats %+v, want the taint cleared with the page", s)
	}
}

// TestCorruptLedgerInvariant hammers a seeded plan and checks the wrapper's
// conservation law: every injection is either still tainting a page or was
// cleared, no double counting.
func TestCorruptLedgerInvariant(t *testing.T) {
	c, ids := corruptTestBackend(t, 8)
	c.SetCorruption(storage.NewCorruptPlan(7, storage.CorruptRule{Probability: 0.3}))
	buf := make([]byte, storage.PageSize)
	for i := 0; i < 500; i++ {
		id := ids[i%len(ids)]
		if i%3 == 0 {
			_ = c.Read(ctx, id, buf)
		} else if err := c.Write(ctx, id, buf); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	s := c.CorruptStats()
	if s.Injected == 0 {
		t.Fatal("plan with p=0.3 over 300+ writes injected nothing")
	}
	if s.Injected != s.Cleared+uint64(s.Tainted) {
		t.Errorf("ledger broken: injected=%d != cleared=%d + tainted=%d", s.Injected, s.Cleared, s.Tainted)
	}
	if got := len(c.TaintedPages()); got != s.Tainted {
		t.Errorf("TaintedPages len %d != stats.Tainted %d", got, s.Tainted)
	}
}

func TestCorruptErrorsPermanent(t *testing.T) {
	if storage.IsTransient(&storage.ErrCorrupt{Page: 3, Kind: storage.CorruptChecksum}) {
		t.Error("ErrCorrupt must be permanent: rereading rotten bytes cannot help")
	}
	if storage.IsTransient(storage.ErrNoSpace) {
		t.Error("ErrNoSpace must be permanent: the device stays full until an operator acts")
	}
	wrapped := &storage.ErrCorrupt{Page: 9, Kind: storage.CorruptTorn}
	if !storage.IsCorrupt(errWrap(errWrap(wrapped))) {
		t.Error("IsCorrupt must see through wrapping")
	}
}

func errWrap(err error) error { return &wrapErr{err} }

type wrapErr struct{ err error }

func (w *wrapErr) Error() string { return "wrapped: " + w.err.Error() }
func (w *wrapErr) Unwrap() error { return w.err }

// TestRepairerForWalksChain checks the unwrapping seam: RepairerFor finds a
// Repairer buried under non-repairing wrappers, and reports absence when
// the chain bottoms out without one.
func TestRepairerForWalksChain(t *testing.T) {
	base := sim.New(sim.ServiceModel{})
	corrupter := storage.WithCorruption(base)
	stack := storage.WithFaults(corrupter)
	r, ok := storage.RepairerFor(stack)
	if !ok {
		t.Fatal("RepairerFor missed the corrupter under the fault wrapper")
	}
	if _, isCorrupter := r.(*storage.Corrupter); !isCorrupter {
		t.Fatalf("RepairerFor returned %T, want the outermost Repairer (*storage.Corrupter)", r)
	}
	if _, ok := storage.RepairerFor(storage.WithFaults(base)); ok {
		t.Error("RepairerFor invented a repairer over the bare simulator")
	}
	var nilBackend storage.Backend
	if _, ok := storage.RepairerFor(nilBackend); ok {
		t.Error("RepairerFor on nil backend")
	}
}

// TestCorruptChargeFaultDelegates ensures inserting the corrupter between
// the fault wrapper and the simulator keeps fault charging (simulated
// service time on faulted ops) alive.
func TestCorruptChargeFaultDelegates(t *testing.T) {
	var fc storage.FaultCharger = storage.WithCorruption(sim.New(sim.ServiceModel{}))
	fc.ChargeFault(0) // must not panic; delegation reaches the simulator
	if _, ok := storage.WithCorruption(faultlessBackend{}).Inner().(storage.FaultCharger); ok {
		t.Fatal("test backend unexpectedly implements FaultCharger")
	}
	storage.WithCorruption(faultlessBackend{}).ChargeFault(0) // no-op, no panic
}

type faultlessBackend struct{ storage.Backend }
