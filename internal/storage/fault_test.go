package storage_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/storage"
	"repro/internal/storage/sim"
)

var ctx = context.Background()

// faultTestBackend wraps a fresh simulator in the fault stage and allocates
// the requested pages.
func faultTestBackend(t *testing.T, pages int) (*storage.Faulty, []policy.PageID) {
	t.Helper()
	return faultTestBackendModel(t, pages, sim.ServiceModel{})
}

func faultTestBackendModel(t *testing.T, pages int, model sim.ServiceModel) (*storage.Faulty, []policy.PageID) {
	t.Helper()
	f := storage.WithFaults(sim.New(model))
	ids := make([]policy.PageID, pages)
	for i := range ids {
		ids[i] = storage.MustAllocate(f)
	}
	return f, ids
}

func TestFaultCountAndAfter(t *testing.T) {
	m, ids := faultTestBackend(t, 1)
	m.SetFaults(storage.NewFaultPlan(1, storage.FaultRule{Op: storage.OpWrite, After: 2, Count: 3}))
	buf := make([]byte, storage.PageSize)
	var got []bool
	for i := 0; i < 8; i++ {
		got = append(got, m.Write(ctx, ids[0], buf) != nil)
	}
	want := []bool{false, false, true, true, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("write %d faulted=%v, want %v (pattern %v)", i, got[i], want[i], got)
		}
	}
	// The rule is write-only: reads never fault.
	for i := 0; i < 8; i++ {
		if err := m.Read(ctx, ids[0], buf); err != nil {
			t.Fatalf("read %d faulted under a write-only rule: %v", i, err)
		}
	}
	if s := m.Stats(); s.WriteFaults != 3 || s.ReadFaults != 0 || s.Writes != 5 || s.Reads != 8 {
		t.Errorf("stats %+v, want 3 write faults, 5 writes, 8 reads", s)
	}
}

func TestFaultPerPage(t *testing.T) {
	m, ids := faultTestBackend(t, 2)
	m.SetFaults(storage.NewFaultPlan(1, storage.FaultRule{Pages: []policy.PageID{ids[0]}}))
	buf := make([]byte, storage.PageSize)
	if err := m.Read(ctx, ids[0], buf); !errors.Is(err, storage.ErrInjectedFault) {
		t.Errorf("read of targeted page: %v, want ErrInjectedFault", err)
	}
	if err := m.Write(ctx, ids[0], buf); !errors.Is(err, storage.ErrInjectedFault) {
		t.Errorf("write of targeted page: %v, want ErrInjectedFault", err)
	}
	if err := m.Read(ctx, ids[1], buf); err != nil {
		t.Errorf("read of untargeted page faulted: %v", err)
	}
	if err := m.Write(ctx, ids[1], buf); err != nil {
		t.Errorf("write of untargeted page faulted: %v", err)
	}
}

func TestFaultCustomError(t *testing.T) {
	sentinel := errors.New("the head crashed")
	m, ids := faultTestBackend(t, 1)
	m.SetFaults(storage.NewFaultPlan(1, storage.FaultRule{Op: storage.OpRead, Err: sentinel}))
	buf := make([]byte, storage.PageSize)
	if err := m.Read(ctx, ids[0], buf); !errors.Is(err, sentinel) {
		t.Errorf("read error %v, want the rule's custom error", err)
	}
}

// TestFaultProbabilityDeterminism replays the same operation sequence
// against two backends with identically seeded plans: the fault pattern
// must match op for op. A different seed must (at this length) produce a
// different pattern.
func TestFaultProbabilityDeterminism(t *testing.T) {
	pattern := func(seed uint64) []bool {
		m, ids := faultTestBackend(t, 8)
		m.SetFaults(storage.NewFaultPlan(seed, storage.FaultRule{Probability: 0.3}))
		buf := make([]byte, storage.PageSize)
		var out []bool
		for i := 0; i < 200; i++ {
			id := ids[i%len(ids)]
			var err error
			if i%2 == 0 {
				err = m.Read(ctx, id, buf)
			} else {
				err = m.Write(ctx, id, buf)
			}
			out = append(out, err != nil)
		}
		return out
	}
	a, b, c := pattern(7), pattern(7), pattern(8)
	faults := 0
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: same seed diverged", i)
		}
		if a[i] != c[i] {
			same = false
		}
		if a[i] {
			faults++
		}
	}
	if same {
		t.Error("different seeds produced identical 200-op fault patterns")
	}
	// ~30% of 200 ops; generous bounds, just catching always/never.
	if faults < 20 || faults > 120 {
		t.Errorf("probability 0.3 injected %d/200 faults", faults)
	}
}

// TestFaultChargesServiceAndDelay pins the documented contract: a faulted
// operation transfers no data but still costs service time and still runs
// the simulator's Delay hook (so tests can park a doomed I/O like a
// successful one). This is the FaultCharger seam between the wrapper and
// the backend.
func TestFaultChargesServiceAndDelay(t *testing.T) {
	delays := 0
	m, ids := faultTestBackendModel(t, 1, sim.ServiceModel{Delay: func(int64) { delays++ }})
	id := ids[0]
	buf := make([]byte, storage.PageSize)
	copy(buf, []byte("original"))
	if err := m.Write(ctx, id, buf); err != nil {
		t.Fatal(err)
	}
	before := m.Stats()
	m.SetFaults(storage.NewFaultPlan(1, storage.FaultRule{Op: storage.OpWrite}))
	copy(buf, []byte("doomed!!"))
	if err := m.Write(ctx, id, buf); !errors.Is(err, storage.ErrInjectedFault) {
		t.Fatalf("write under always-fault rule: %v", err)
	}
	after := m.Stats()
	if after.ServiceMicros <= before.ServiceMicros {
		t.Error("faulted write charged no service time")
	}
	if delays != 2 {
		t.Errorf("Delay ran %d times, want 2 (one per write, faulted included)", delays)
	}
	if after.Writes != before.Writes {
		t.Error("faulted write counted in Stats.Writes")
	}
	// The page content is untouched by the faulted write.
	m.SetFaults(nil)
	got := make([]byte, storage.PageSize)
	if err := m.Read(ctx, id, got); err != nil {
		t.Fatal(err)
	}
	if string(got[:8]) != "original" {
		t.Errorf("faulted write mutated the page: %q", got[:8])
	}
}

// TestFaultRuleOrder checks that rules are consulted in declaration order
// and that an op is charged against every rule until one fires.
func TestFaultRuleOrder(t *testing.T) {
	first := errors.New("first")
	second := errors.New("second")
	m, ids := faultTestBackend(t, 1)
	m.SetFaults(storage.NewFaultPlan(1,
		storage.FaultRule{Op: storage.OpRead, Count: 1, Err: first},
		storage.FaultRule{Op: storage.OpRead, Count: 1, Err: second},
	))
	buf := make([]byte, storage.PageSize)
	if err := m.Read(ctx, ids[0], buf); !errors.Is(err, first) {
		t.Errorf("first read: %v, want first rule's error", err)
	}
	if err := m.Read(ctx, ids[0], buf); !errors.Is(err, second) {
		t.Errorf("second read: %v, want second rule's error", err)
	}
	if err := m.Read(ctx, ids[0], buf); err != nil {
		t.Errorf("third read: %v, want success (both rules exhausted)", err)
	}
}

func TestSetFaultsDisarms(t *testing.T) {
	m, ids := faultTestBackend(t, 1)
	m.SetFaults(storage.NewFaultPlan(1, storage.FaultRule{}))
	buf := make([]byte, storage.PageSize)
	if err := m.Read(ctx, ids[0], buf); err == nil {
		t.Fatal("armed plan did not fault")
	}
	m.SetFaults(nil)
	if err := m.Read(ctx, ids[0], buf); err != nil {
		t.Errorf("disarmed backend still faulted: %v", err)
	}
}

// TestBreakerWrapperTripsAndRecovers drives the Backend-level breaker
// wrapper end to end over a faulty simulator: consecutive failures on one
// page's stripe open the circuit (further I/O on that stripe fails fast
// with ErrUnavailable without reaching the backend), the cooldown admits a
// probe, and successful probes close it again.
func TestBreakerWrapperTripsAndRecovers(t *testing.T) {
	clk := newWrapperClock()
	f, ids := faultTestBackend(t, 1)
	id := ids[0]
	br := storage.WithBreaker(f, storage.BreakerConfig{Threshold: 2, Cooldown: 50 * time.Millisecond, Probes: 1}, clk.now)
	if br == nil {
		t.Fatal("WithBreaker returned nil for an enabled config")
	}
	buf := make([]byte, storage.PageSize)

	f.SetFaults(storage.NewFaultPlan(1, storage.FaultRule{Op: storage.OpRead}))
	for i := 0; i < 2; i++ {
		if err := br.Read(ctx, id, buf); !errors.Is(err, storage.ErrInjectedFault) {
			t.Fatalf("read %d: %v, want injected fault", i, err)
		}
	}
	// Circuit open: refusals are local and permanent under IsTransient.
	err := br.Read(ctx, id, buf)
	if !errors.Is(err, storage.ErrUnavailable) {
		t.Fatalf("read after trip: %v, want ErrUnavailable", err)
	}
	if storage.IsTransient(err) {
		t.Error("breaker refusal classified transient")
	}
	faultsAtTrip := f.Stats().ReadFaults
	if err := br.Write(ctx, id, buf); !errors.Is(err, storage.ErrUnavailable) {
		t.Errorf("write on open stripe: %v, want ErrUnavailable", err)
	}
	if f.Stats().ReadFaults != faultsAtTrip {
		t.Error("refused read reached the inner backend")
	}
	if br.Trips() != 1 || br.OpenStripes() != 1 {
		t.Errorf("trips=%d open=%d, want 1/1", br.Trips(), br.OpenStripes())
	}
	stripe := br.StripeOf(id)
	if br.Ready(stripe) {
		t.Error("Ready = true on an open stripe inside cooldown")
	}

	// Heal the backend, wait out the cooldown: one probe closes it.
	f.SetFaults(nil)
	clk.advance(51 * time.Millisecond)
	if !br.Ready(stripe) {
		t.Error("Ready = false after cooldown")
	}
	if err := br.Read(ctx, id, buf); err != nil {
		t.Fatalf("probe read: %v", err)
	}
	if br.OpenStripes() != 0 {
		t.Error("circuit still open after a successful probe")
	}
	if err := br.Read(ctx, id, buf); err != nil {
		t.Errorf("read after recovery: %v", err)
	}
}

type wrapperClock struct{ t time.Time }

func (c *wrapperClock) now() time.Time          { return c.t }
func (c *wrapperClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newWrapperClock() *wrapperClock            { return &wrapperClock{t: time.Unix(1000, 0)} }

// TestWithBreakerDisabledConfig: a non-positive threshold yields a nil
// wrapper so callers fall back to the bare backend.
func TestWithBreakerDisabledConfig(t *testing.T) {
	if br := storage.WithBreaker(sim.New(sim.ServiceModel{}), storage.BreakerConfig{}, time.Now); br != nil {
		t.Fatal("WithBreaker with zero threshold returned a live wrapper")
	}
}
