package file

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/storage"
)

// flipSlotByte mutilates one byte of page p's stored image directly in the
// page file, bypassing the WAL — simulated media rot.
func flipSlotByte(t *testing.T, s *Store, p policy.PageID, off int64) {
	t.Helper()
	var b [1]byte
	if _, err := s.pages.ReadAt(b[:], s.slotOff(p)+off); err != nil {
		t.Fatalf("reading byte to flip: %v", err)
	}
	b[0] ^= 0xFF
	if _, err := s.pages.WriteAt(b[:], s.slotOff(p)+off); err != nil {
		t.Fatalf("flipping byte: %v", err)
	}
}

func TestReadDetectsBitRot(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	p := storage.MustAllocate(s)
	if err := s.Write(ctx, p, pageImage(0x5A)); err != nil {
		t.Fatal(err)
	}
	flipSlotByte(t, s, p, 100)
	buf := make([]byte, storage.PageSize)
	err := s.Read(ctx, p, buf)
	ce, ok := storage.AsCorrupt(err)
	if !ok || ce.Page != p || ce.Kind != storage.CorruptChecksum {
		t.Fatalf("read of rotted page: %v, want ErrCorrupt{%d, checksum}", err, p)
	}
	if storage.IsTransient(err) {
		t.Error("corruption must be permanent: the retry ladder would spin on it")
	}
}

func TestReadDetectsTrailerRot(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	p := storage.MustAllocate(s)
	if err := s.Write(ctx, p, pageImage(0x77)); err != nil {
		t.Fatal(err)
	}
	flipSlotByte(t, s, p, storage.PageSize+21) // inside the stored CRC
	buf := make([]byte, storage.PageSize)
	if err := s.Read(ctx, p, buf); !storage.IsCorrupt(err) {
		t.Fatalf("read with rotted trailer: %v, want corrupt", err)
	}
}

func TestReadDetectsMisdirectedWrite(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	a, b := storage.MustAllocate(s), storage.MustAllocate(s)
	if err := s.Write(ctx, a, pageImage(0xAA)); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(ctx, b, pageImage(0xBB)); err != nil {
		t.Fatal(err)
	}
	// Copy a's whole slot (image and trailer, internally consistent) over
	// b's: the classic misdirected write. The CRC verifies; the id does not.
	slot := make([]byte, s.slotSize())
	if _, err := s.pages.ReadAt(slot, s.slotOff(a)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.pages.WriteAt(slot, s.slotOff(b)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, storage.PageSize)
	err := s.Read(ctx, b, buf)
	ce, ok := storage.AsCorrupt(err)
	if !ok || ce.Kind != storage.CorruptMisdirect {
		t.Fatalf("read of misdirected slot: %v, want CorruptMisdirect", err)
	}
	if err := s.Read(ctx, a, buf); err != nil {
		t.Fatalf("source page must stay intact: %v", err)
	}
}

func TestRepairPageFromWALTail(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	p := storage.MustAllocate(s)
	img := pageImage(0x42)
	if err := s.Write(ctx, p, img); err != nil {
		t.Fatal(err)
	}
	flipSlotByte(t, s, p, 0)
	buf := make([]byte, storage.PageSize)
	if err := s.Read(ctx, p, buf); !storage.IsCorrupt(err) {
		t.Fatalf("pre-repair read: %v, want corrupt", err)
	}
	// The WAL has not been checkpointed since the write: its tail holds the
	// good image.
	if err := s.RepairPage(ctx, p); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if err := s.Read(ctx, p, buf); err != nil {
		t.Fatalf("post-repair read: %v", err)
	}
	if !bytes.Equal(buf, img) {
		t.Error("repair restored the wrong image")
	}
}

func TestRepairPageKeepsLatestWALImage(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	p := storage.MustAllocate(s)
	for fill := byte(1); fill <= 3; fill++ {
		if err := s.Write(ctx, p, pageImage(fill)); err != nil {
			t.Fatal(err)
		}
	}
	flipSlotByte(t, s, p, 7)
	if err := s.RepairPage(ctx, p); err != nil {
		t.Fatalf("repair: %v", err)
	}
	buf := make([]byte, storage.PageSize)
	if err := s.Read(ctx, p, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pageImage(3)) {
		t.Error("repair must replay the most recent logged image, not an older one")
	}
}

func TestRepairPageIntactIsNoop(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	p := storage.MustAllocate(s)
	if err := s.Write(ctx, p, pageImage(9)); err != nil {
		t.Fatal(err)
	}
	if err := s.RepairPage(ctx, p); err != nil {
		t.Fatalf("repair of intact page: %v", err)
	}
	if err := s.RepairPage(ctx, 99); err == nil {
		t.Error("repair of unallocated page succeeded")
	}
}

func TestUnrepairableAfterCheckpoint(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	p := storage.MustAllocate(s)
	if err := s.Write(ctx, p, pageImage(0x42)); err != nil {
		t.Fatal(err)
	}
	// The checkpoint truncates the WAL: the redundant copy is gone.
	if err := s.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	flipSlotByte(t, s, p, 0)
	err := s.RepairPage(ctx, p)
	if !storage.IsCorrupt(err) {
		t.Fatalf("repair without a WAL image: %v, want the corruption to stand", err)
	}
	buf := make([]byte, storage.PageSize)
	if err := s.Read(ctx, p, buf); !storage.IsCorrupt(err) {
		t.Fatalf("page must stay corrupt: %v", err)
	}
}

func TestVerifyReadsOff(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenConfig(dir, Config{VerifyReads: false})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p := storage.MustAllocate(s)
	if err := s.Write(ctx, p, pageImage(0x11)); err != nil {
		t.Fatal(err)
	}
	flipSlotByte(t, s, p, 50)
	// Verification disabled: the rotted image is served as-is (the scrubber
	// and RepairPage still verify; only the hot read path is relaxed).
	buf := make([]byte, storage.PageSize)
	if err := s.Read(ctx, p, buf); err != nil {
		t.Fatalf("unverified read: %v", err)
	}
}

// writeLegacyStore lays down a pre-trailer store by hand: 4 KByte slots,
// meta.json without a format field — exactly what a store created before
// the integrity format looked like on disk.
func writeLegacyStore(t *testing.T, dir string, pages ...[]byte) {
	t.Helper()
	var blob []byte
	for _, img := range pages {
		blob = append(blob, img...)
	}
	if err := os.WriteFile(filepath.Join(dir, pagesName), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	metaJSON := []byte(`{"next_page":` + jsonInt(len(pages)) + `}`)
	if err := os.WriteFile(filepath.Join(dir, metaName), metaJSON, 0o644); err != nil {
		t.Fatal(err)
	}
}

func jsonInt(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

func TestLegacyStoreReadableForever(t *testing.T) {
	dir := t.TempDir()
	writeLegacyStore(t, dir, pageImage(0xA1), pageImage(0xB2))
	s := mustOpen(t, dir)
	if s.format != formatLegacy {
		t.Fatalf("format %d, want legacy", s.format)
	}
	buf := make([]byte, storage.PageSize)
	if err := s.Read(ctx, 1, buf); err != nil {
		t.Fatalf("legacy read: %v", err)
	}
	if !bytes.Equal(buf, pageImage(0xB2)) {
		t.Error("legacy slot offsets broken: wrong image read")
	}
	// Writes work and stay at legacy offsets — the format is pinned for the
	// store's lifetime, never silently migrated.
	if err := s.Write(ctx, 0, pageImage(0xC3)); err != nil {
		t.Fatalf("legacy write: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	defer s2.Close()
	if s2.format != formatLegacy {
		t.Fatalf("reopen flipped format to %d", s2.format)
	}
	if err := s2.Read(ctx, 0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pageImage(0xC3)) {
		t.Error("legacy write lost across reopen")
	}
	if err := s2.Read(ctx, 1, buf); err != nil || !bytes.Equal(buf, pageImage(0xB2)) {
		t.Errorf("untouched legacy page damaged: %v", err)
	}
}

func TestFreshStoreUsesTrailerFormat(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if s.format != formatTrailer {
		t.Fatalf("fresh store format %d, want trailer", s.format)
	}
	p := storage.MustAllocate(s)
	if err := s.Write(ctx, p, pageImage(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, metaName))
	if err != nil {
		t.Fatal(err)
	}
	var m meta
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Format != formatTrailer {
		t.Errorf("meta format %d, want %d persisted", m.Format, formatTrailer)
	}
	if m.Epoch == 0 {
		t.Error("write epoch not persisted across checkpoint")
	}
}

func TestOpenRefusesCorruptMeta(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	p := storage.MustAllocate(s)
	if err := s.Write(ctx, p, pageImage(5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, metaName), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenConfig(dir, DefaultConfig()); err == nil {
		t.Fatal("open over corrupt meta.json succeeded; must fail loudly")
	}
}

func TestOpenRefusesUnknownFormat(t *testing.T) {
	dir := t.TempDir()
	mustOpen(t, dir).Close()
	if err := os.WriteFile(filepath.Join(dir, metaName), []byte(`{"format":7,"next_page":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenConfig(dir, DefaultConfig()); err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("open with future format: %v, want unknown-format refusal", err)
	}
}

func TestOpenRefusesOrphanedPageFile(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	p := storage.MustAllocate(s)
	if err := s.Write(ctx, p, pageImage(5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// meta.json lost (operator mishap): the store's identity is gone, and
	// re-initialising would orphan every page silently.
	if err := os.Remove(filepath.Join(dir, metaName)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenConfig(dir, DefaultConfig()); err == nil || !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("open with missing meta over live pages: %v, want refusal", err)
	}
}

func TestTornMetaPublishFallsBack(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	p := storage.MustAllocate(s)
	img := pageImage(0x66)
	if err := s.Write(ctx, p, img); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-publish leaves a half-written tmp next to the last good
	// meta; the rename never happened, so the good file must win.
	if err := os.WriteFile(filepath.Join(dir, metaName+".tmp"), []byte("{ga"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	defer s2.Close()
	buf := make([]byte, storage.PageSize)
	if err := s2.Read(ctx, p, buf); err != nil {
		t.Fatalf("read after torn meta publish: %v", err)
	}
	if !bytes.Equal(buf, img) {
		t.Error("data lost to a stray meta tmp file")
	}
}

func TestMaxWALBytesForcesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenConfig(dir, Config{VerifyReads: true, MaxWALBytes: 2 * storage.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p := storage.MustAllocate(s)
	base := s.Stats().Checkpoints
	for i := 0; i < 8; i++ {
		if err := s.Write(ctx, p, pageImage(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Checkpoints <= base {
		t.Errorf("no forced checkpoint after 8 page writes against a 2-page WAL bound (checkpoints=%d)", st.Checkpoints)
	}
	if st.WALBytes > 3*storage.PageSize {
		t.Errorf("WAL gauge %d bytes: the bound is not holding", st.WALBytes)
	}
	if fi, err := os.Stat(filepath.Join(dir, walName)); err == nil && fi.Size() > 3*storage.PageSize {
		t.Errorf("wal.log is %d bytes on disk: forced checkpoints are not truncating", fi.Size())
	}
	buf := make([]byte, storage.PageSize)
	if err := s.Read(ctx, p, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pageImage(7)) {
		t.Error("data wrong after forced checkpoints")
	}
}

func TestWALBytesGaugeResets(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	p := storage.MustAllocate(s)
	if err := s.Write(ctx, p, pageImage(1)); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().WALBytes; got == 0 {
		t.Error("WAL gauge zero after an append")
	}
	if err := s.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().WALBytes; got != 0 {
		t.Errorf("WAL gauge %d after checkpoint, want 0", got)
	}
}

func TestCorruptPagesHelperAndReplayHeals(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	var ids []policy.PageID
	for i := 0; i < 6; i++ {
		p := storage.MustAllocate(s)
		ids = append(ids, p)
		if err := s.Write(ctx, p, pageImage(byte(0x10+i))); err != nil {
			t.Fatal(err)
		}
	}
	// Simulated crash: files dropped without the Close checkpoint, so the
	// WAL still covers every write.
	s.closeFiles()

	hit, err := CorruptPages(dir, 3, 42)
	if err != nil {
		t.Fatalf("CorruptPages: %v", err)
	}
	if len(hit) != 3 {
		t.Fatalf("corrupted %d pages, want 3", len(hit))
	}
	// Determinism: the same seed picks the same victims.
	if again, _ := CorruptPages(dir, 3, 42); len(again) != 3 || again[0] != hit[0] {
		t.Errorf("same seed chose different victims: %v vs %v", again, hit)
	}

	// Recovery replays the WAL over the page file, laying fresh trailers:
	// the flipped bytes are healed without any explicit repair call.
	s2 := mustOpen(t, dir)
	defer s2.Close()
	buf := make([]byte, storage.PageSize)
	for i, p := range ids {
		if err := s2.Read(ctx, p, buf); err != nil {
			t.Fatalf("read page %d after recovery: %v", p, err)
		}
		if !bytes.Equal(buf, pageImage(byte(0x10+i))) {
			t.Errorf("page %d content wrong after recovery", p)
		}
	}
}

func TestSparseSlotReadsZero(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	// Allocate without writing: the slot is a hole (all-zero image, all-zero
	// trailer), which must verify clean, not read as corruption.
	p := storage.MustAllocate(s)
	buf := make([]byte, storage.PageSize)
	if err := s.Read(ctx, p, buf); err != nil {
		t.Fatalf("read of never-written page: %v", err)
	}
	if !isZero(buf) {
		t.Error("fresh page not zero")
	}
}
