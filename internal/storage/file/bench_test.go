package file

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/policy"
	"repro/internal/storage"
	"repro/internal/storage/sim"
)

// The backend benchmarks run the same page workload over the in-memory
// simulator and the durable file store, so BENCH_storage.json (written by
// `make bench-save`) tracks the price of durability — WAL append, group
// commit fsync, checkpoint — against the zero-cost baseline.

func benchBackends(b *testing.B, fn func(b *testing.B, bk storage.Backend)) {
	b.Run("sim", func(b *testing.B) {
		fn(b, sim.New(sim.ServiceModel{}))
	})
	b.Run("file", func(b *testing.B) {
		s, err := Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		fn(b, s)
	})
}

func benchPages(b *testing.B, bk storage.Backend, n int) []policy.PageID {
	b.Helper()
	ids := make([]policy.PageID, n)
	buf := make([]byte, storage.PageSize)
	for i := range ids {
		ids[i] = storage.MustAllocate(bk)
		buf[0] = byte(i)
		if err := bk.Write(context.Background(), ids[i], buf); err != nil {
			b.Fatal(err)
		}
	}
	return ids
}

// BenchmarkBackendWrite is a single-writer page overwrite loop: on the
// file store every iteration pays one WAL append plus one (unbatched)
// commit fsync — the worst case group commit exists to amortise.
func BenchmarkBackendWrite(b *testing.B) {
	benchBackends(b, func(b *testing.B, bk storage.Backend) {
		ids := benchPages(b, bk, 64)
		buf := make([]byte, storage.PageSize)
		b.SetBytes(storage.PageSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf[0] = byte(i)
			if err := bk.Write(context.Background(), ids[i%len(ids)], buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBackendWriteParallel drives concurrent writers over disjoint
// pages: the file store's leader/follower group commit batches their
// fsyncs, so per-op cost should drop well below the serial write path.
func BenchmarkBackendWriteParallel(b *testing.B) {
	benchBackends(b, func(b *testing.B, bk storage.Backend) {
		ids := benchPages(b, bk, 256)
		var next atomic.Int64
		b.SetBytes(storage.PageSize)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			buf := make([]byte, storage.PageSize)
			for pb.Next() {
				id := ids[int(next.Add(1))%len(ids)]
				if err := bk.Write(context.Background(), id, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkBackendRead is the page fetch path: the file store serves it
// with one pread under a shared stripe latch, no WAL involvement.
func BenchmarkBackendRead(b *testing.B) {
	benchBackends(b, func(b *testing.B, bk storage.Backend) {
		ids := benchPages(b, bk, 64)
		buf := make([]byte, storage.PageSize)
		b.SetBytes(storage.PageSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := bk.Read(context.Background(), ids[i%len(ids)], buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCheckpoint measures the FLUSH barrier on the file store: page
// file fsync, meta publish, WAL truncate. One dirty page per iteration
// keeps the WAL non-empty so truncation does real work.
func BenchmarkCheckpoint(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	id := storage.MustAllocate(s)
	buf := make([]byte, storage.PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf[0] = byte(i)
		if err := s.Write(context.Background(), id, buf); err != nil {
			b.Fatal(err)
		}
		if err := s.Flush(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecovery measures redo replay throughput: build a WAL of page
// images, then time Open's replay of it.
func BenchmarkRecovery(b *testing.B) {
	for _, records := range []int{64, 1024} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			dir := b.TempDir()
			s, err := Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			ids := benchPages(b, s, 16)
			buf := make([]byte, storage.PageSize)
			for i := 0; i < records; i++ {
				if err := s.Write(context.Background(), ids[i%len(ids)], buf); err != nil {
					b.Fatal(err)
				}
			}
			// Abandon without Close: the WAL holds every record above.
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				img := copyBenchDir(b, dir)
				b.StartTimer()
				r, err := Open(img)
				if err != nil {
					b.Fatal(err)
				}
				if r.Recovery().Replayed == 0 {
					b.Fatal("nothing replayed")
				}
				b.StopTimer()
				r.Close()
				b.StartTimer()
			}
		})
	}
}

func copyBenchDir(b *testing.B, src string) string {
	b.Helper()
	dst := b.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			b.Fatal(err)
		}
	}
	return dst
}
