package file

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/policy"
	"repro/internal/storage"
)

func TestRecordRoundTrip(t *testing.T) {
	img := make([]byte, storage.PageSize)
	for i := range img {
		img[i] = byte(i * 7)
	}
	frames := [][]byte{
		encodePageRecord(42, img),
		encodeMetaRecord(recKindAlloc, 7),
		encodeMetaRecord(recKindDealloc, 0),
	}
	var log bytes.Buffer
	for _, f := range frames {
		log.Write(f)
	}
	r := bytes.NewReader(log.Bytes())

	p1, err := readRecord(r)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := decodeRecord(p1)
	if err != nil {
		t.Fatal(err)
	}
	if rec.kind != recKindPage || rec.page != 42 || !bytes.Equal(rec.img, img) {
		t.Errorf("page record decoded as kind=%d page=%d", rec.kind, rec.page)
	}

	p2, _ := readRecord(r)
	if rec, err := decodeRecord(p2); err != nil || rec.kind != recKindAlloc || rec.page != 7 {
		t.Errorf("alloc record: %+v, %v", rec, err)
	}
	p3, _ := readRecord(r)
	if rec, err := decodeRecord(p3); err != nil || rec.kind != recKindDealloc || rec.page != 0 {
		t.Errorf("dealloc record: %+v, %v", rec, err)
	}
	if _, err := readRecord(r); err != io.EOF {
		t.Errorf("clean end of log reported %v, want io.EOF", err)
	}
}

// TestTruncatedTail verifies that every proper prefix of a frame reads as a
// torn record, never as a bogus success — the property recovery's
// stop-at-tail discipline rests on.
func TestTruncatedTail(t *testing.T) {
	frame := encodePageRecord(3, make([]byte, storage.PageSize))
	for cut := 1; cut < len(frame); cut += 97 { // sample cuts across the frame
		_, err := readRecord(bytes.NewReader(frame[:cut]))
		if err == io.EOF || err == nil {
			t.Fatalf("frame cut at %d/%d bytes read as %v, want torn record", cut, len(frame), err)
		}
		if !errors.Is(err, errTornRecord) {
			t.Fatalf("frame cut at %d: %v, want errTornRecord", cut, err)
		}
	}
	// Zero bytes is a clean EOF, not a torn record.
	if _, err := readRecord(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty log: %v, want io.EOF", err)
	}
}

// TestCorruptChecksum flips each region of a frame and expects the read to
// fail: a bit flipped anywhere in the payload or header must not decode.
func TestCorruptChecksum(t *testing.T) {
	base := encodeMetaRecord(recKindAlloc, 12345)
	for i := 0; i < len(base); i++ {
		mut := append([]byte(nil), base...)
		mut[i] ^= 0x40
		payload, err := readRecord(bytes.NewReader(mut))
		if err != nil {
			continue // rejected at the frame layer: good
		}
		// A flip in the length field can still yield a CRC-consistent
		// frame only if the payload bytes happen to re-validate — with a
		// 32-bit CRC over a changed region that must not happen here.
		if _, derr := decodeRecord(payload); derr == nil {
			t.Fatalf("byte %d flipped but record decoded cleanly", i)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":            {},
		"short":            {recKindPage, 1, 2},
		"unknown kind":     append([]byte{99}, make([]byte, 8)...),
		"page image short": append([]byte{recKindPage}, make([]byte, 8+10)...),
		"meta too long":    append([]byte{recKindAlloc}, make([]byte, 9)...),
	}
	for name, payload := range cases {
		if _, err := decodeRecord(payload); err == nil {
			t.Errorf("%s payload decoded cleanly", name)
		}
	}
}

func TestOversizedLengthIsTorn(t *testing.T) {
	var hdr [recHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], maxPayload+1)
	if _, err := readRecord(bytes.NewReader(hdr[:])); !errors.Is(err, errTornRecord) {
		t.Errorf("oversized length: %v, want errTornRecord", err)
	}
	binary.BigEndian.PutUint32(hdr[0:4], 0)
	if _, err := readRecord(bytes.NewReader(hdr[:])); !errors.Is(err, errTornRecord) {
		t.Errorf("zero length: %v, want errTornRecord", err)
	}
}

// FuzzWALRecord mirrors the wire codec's fuzz tests: any byte stream either
// fails to read, or yields a payload that round-trips through the codec
// byte for byte.
func FuzzWALRecord(f *testing.F) {
	img := make([]byte, storage.PageSize)
	img[0], img[4095] = 0xAB, 0xCD
	f.Add(encodePageRecord(0, img))
	f.Add(encodeMetaRecord(recKindAlloc, 1))
	f.Add(encodeMetaRecord(recKindDealloc, 1<<40))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{0xFF}, recHeader))
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := readRecord(bytes.NewReader(data))
		if err != nil {
			return
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return
		}
		// Re-encode from the decoded fields and compare against the frame
		// actually consumed (header + payload).
		var again []byte
		switch rec.kind {
		case recKindPage:
			again = encodePageRecord(rec.page, rec.img)
		default:
			again = encodeMetaRecord(rec.kind, rec.page)
		}
		if !bytes.Equal(again, data[:len(again)]) {
			t.Fatalf("decode/re-encode mismatch for kind %d page %d", rec.kind, rec.page)
		}
	})
}

// FuzzReplayFrom drives recovery's record loop over arbitrary logs: it must
// never error on garbage (torn tail semantics), never apply past the first
// bad frame, and applying the same log to two fresh stores must produce
// identical page files (replay determinism).
func FuzzReplayFrom(f *testing.F) {
	img := make([]byte, storage.PageSize)
	img[17] = 0x5A
	var good bytes.Buffer
	good.Write(encodeMetaRecord(recKindAlloc, 0))
	good.Write(encodePageRecord(0, img))
	f.Add(good.Bytes())
	f.Add(good.Bytes()[:good.Len()-3])
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef})
	f.Fuzz(func(t *testing.T, data []byte) {
		open := func(dir string) *Store {
			s, err := Open(dir)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			return s
		}
		s1, s2 := open(t.TempDir()), open(t.TempDir())
		n1, torn1, err1 := s1.replayFrom(bytes.NewReader(data))
		n2, torn2, err2 := s2.replayFrom(bytes.NewReader(data))
		if err1 != nil || err2 != nil {
			t.Fatalf("replay errored on in-memory log: %v / %v", err1, err2)
		}
		if n1 != n2 || torn1 != torn2 {
			t.Fatalf("replay divergence: (%d,%v) vs (%d,%v)", n1, torn1, n2, torn2)
		}
		if s1.next != s2.next {
			t.Fatalf("allocation divergence: next %d vs %d", s1.next, s2.next)
		}
		buf1 := make([]byte, storage.PageSize)
		buf2 := make([]byte, storage.PageSize)
		for p := policy.PageID(0); p < s1.next; p++ {
			if !s1.isAllocated(p) {
				continue
			}
			if _, err := s1.pages.ReadAt(buf1, int64(p)*storage.PageSize); err != nil {
				t.Fatal(err)
			}
			if _, err := s2.pages.ReadAt(buf2, int64(p)*storage.PageSize); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf1, buf2) {
				t.Fatalf("page %d diverged between identical replays", p)
			}
		}
		s1.Close()
		s2.Close()
	})
}
