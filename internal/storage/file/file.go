// Package file implements the durable storage backend: a preallocated page
// file fronted by a group-committed write-ahead log, with redo-only crash
// recovery on open. It is the storage.DurableBackend the simulated disk is
// not — a write that has returned survives kill -9.
//
// Directory layout:
//
//	pages.db   page p's slot at byte offset p × slot size. A slot is the
//	           4 KByte image followed by a 24-byte integrity trailer
//	           (magic, write epoch, page id, CRC32-C — see integrity.go);
//	           stores created before the trailer format have 4 KByte slots
//	           and are served in legacy mode, unverified, forever. Sparse:
//	           holes read as zeros, matching a freshly allocated page.
//	wal.log    the write-ahead log (see wal.go for the record format)
//	meta.json  allocation state (format, next page id, free list, write
//	           epoch) as of the last checkpoint, rewritten atomically
//	           (tmp + rename)
//
// Write-ahead invariant: every state change (page write, allocate,
// deallocate) appends a checksummed WAL record and fsyncs it — batched by
// group commit — before the operation returns. The page-file write itself
// is not synced; a checkpoint (Flush) makes it durable, publishes the
// allocation state, and truncates the log. Recovery therefore replays the
// log over the last checkpoint's page file, stopping at the torn tail, and
// immediately checkpoints so the replayed state is itself durable.
package file

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/storage"
)

const (
	pagesName = "pages.db"
	walName   = "wal.log"
	metaName  = "meta.json"
)

// On-disk slot formats. A store's format is fixed at creation and
// recorded in meta.json; absence of the field marks a store laid down
// before trailers existed.
const (
	// formatLegacy: 4 KByte slots, no trailers, reads unverified. Stores
	// from before the trailer format are pinned here — offsets in an
	// existing pages.db can never change.
	formatLegacy = 0
	// formatTrailer: every slot carries a 24-byte integrity trailer and
	// reads verify it. All freshly created stores use this.
	formatTrailer = 1
)

// meta is the checkpointed allocation state.
type meta struct {
	Format   int     `json:"format,omitempty"`
	NextPage int64   `json:"next_page"`
	Free     []int64 `json:"free,omitempty"`
	Epoch    uint64  `json:"epoch,omitempty"`
}

// Config tunes a Store beyond its directory.
type Config struct {
	// MaxWALBytes forces a checkpoint from the write path once the WAL
	// grows past this many bytes, bounding both log size and recovery
	// replay time. Zero (or negative) leaves the log unbounded — it then
	// empties only at explicit Flush barriers and Close.
	MaxWALBytes int64
	// VerifyReads disables per-read trailer verification when false. Only
	// meaningful on trailer-format stores; the scrubber and RepairPage
	// verify regardless.
	VerifyReads bool
	// Spans, when non-nil, records wal_append and wal_fsync spans for
	// writes running under a sampled trace context, splitting a slow write
	// into latch-held log time versus group-commit wait.
	Spans *obs.SpanRecorder
}

// DefaultConfig returns the production defaults: reads verified, WAL
// unbounded.
func DefaultConfig() Config { return Config{VerifyReads: true} }

// Store is the file-backed durable storage backend.
type Store struct {
	dir    string
	cfg    Config
	format int
	pages  *os.File
	wal    *wal

	// latches stripe page access: a write holds its stripe exclusively
	// across the WAL append and the page-file write, so the page file
	// applies same-page images in LSN order and a concurrent read never
	// sees a torn image.
	latches [storage.DefaultStripes]sync.RWMutex

	// ckpt excludes checkpoints from in-flight operations: writes, allocs,
	// and deallocs hold it shared for their whole span (fsync included), a
	// checkpoint holds it exclusively — so the log it truncates describes
	// only page-file state it has just made durable.
	ckpt sync.RWMutex

	// allocMu guards the allocation state.
	allocMu sync.Mutex
	next    policy.PageID
	free    []policy.PageID
	freeSet map[policy.PageID]struct{}
	size    int64 // current pages.db length

	// epoch numbers slot writes store-wide; each trailer records the
	// epoch of the write that produced it, and meta.json persists the
	// high-water mark at every checkpoint.
	epoch atomic.Uint64
	// ckptPending serialises forced (MaxWALBytes) checkpoints so at most
	// one writer detours into the barrier while the rest stream on.
	ckptPending atomic.Bool

	reads       atomic.Uint64
	writes      atomic.Uint64
	allocated   atomic.Uint64
	deallocated atomic.Uint64
	checkpoints atomic.Uint64
	recovered   atomic.Uint64

	recovery storage.RecoveryInfo
	closed   atomic.Bool
}

var _ storage.DurableBackend = (*Store)(nil)

// Open opens (or creates) the store rooted at dir with DefaultConfig.
func Open(dir string) (*Store, error) { return OpenConfig(dir, DefaultConfig()) }

// OpenConfig opens (or creates) the store rooted at dir. Reopening an
// existing store replays the write-ahead log over the page file —
// redo-only, stopping at the crash's torn tail — and checkpoints, so the
// store is always consistent and the log empty when Open returns.
// Recovery() reports what replay did.
//
// A directory holding a page file but no meta.json is refused rather than
// silently reinitialised: meta.json is the store's identity, and treating
// its loss as "fresh store" would quietly orphan every page.
func OpenConfig(dir string, cfg Config) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("file: creating %s: %w", dir, err)
	}
	_, metaErr := os.Stat(filepath.Join(dir, metaName))
	reopened := metaErr == nil
	if !reopened {
		if fi, err := os.Stat(filepath.Join(dir, pagesName)); err == nil && fi.Size() > 0 {
			return nil, fmt.Errorf("file: %s has a %d-byte page file but no %s; refusing to reinitialise over existing data", dir, fi.Size(), metaName)
		}
	}

	pages, err := os.OpenFile(filepath.Join(dir, pagesName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("file: opening page file: %w", err)
	}
	walF, err := os.OpenFile(filepath.Join(dir, walName), os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		pages.Close()
		return nil, fmt.Errorf("file: opening wal: %w", err)
	}
	s := &Store{
		dir:     dir,
		cfg:     cfg,
		format:  formatTrailer,
		pages:   pages,
		wal:     newWAL(walF),
		freeSet: make(map[policy.PageID]struct{}),
	}
	if fi, err := pages.Stat(); err == nil {
		s.size = fi.Size()
	}
	if reopened {
		s.recovery.Reopened = true
		if err := s.loadMeta(); err != nil {
			s.closeFiles()
			return nil, err
		}
		replayed, tornTail, err := s.replay()
		if err != nil {
			s.closeFiles()
			return nil, err
		}
		s.recovery.Replayed = replayed
		s.recovery.TailDropped = tornTail
		s.recovered.Store(uint64(replayed))
		// Make the replayed state durable and clear the log: recovery must
		// be idempotent, not cumulative, across repeated crashes.
		if err := s.checkpoint(); err != nil {
			s.closeFiles()
			return nil, err
		}
	} else {
		// A fresh store checkpoints immediately so meta.json exists and a
		// reopen before any traffic recovers an empty, valid store.
		if err := s.checkpoint(); err != nil {
			s.closeFiles()
			return nil, err
		}
	}
	return s, nil
}

func (s *Store) closeFiles() {
	s.pages.Close()
	s.wal.f.Close()
}

// loadMeta restores the allocation state of the last checkpoint.
func (s *Store) loadMeta() error {
	raw, err := os.ReadFile(filepath.Join(s.dir, metaName))
	if err != nil {
		return fmt.Errorf("file: reading meta: %w", err)
	}
	var m meta
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("file: parsing meta: %w", err)
	}
	switch m.Format {
	case formatLegacy, formatTrailer:
		s.format = m.Format
	default:
		return fmt.Errorf("file: meta declares unknown format %d", m.Format)
	}
	s.epoch.Store(m.Epoch)
	s.next = policy.PageID(m.NextPage)
	s.free = s.free[:0]
	s.freeSet = make(map[policy.PageID]struct{}, len(m.Free))
	for _, p := range m.Free {
		id := policy.PageID(p)
		s.free = append(s.free, id)
		s.freeSet[id] = struct{}{}
	}
	return nil
}

// writeMeta atomically publishes the current allocation state.
func (s *Store) writeMeta() error {
	s.allocMu.Lock()
	m := meta{Format: s.format, NextPage: int64(s.next), Epoch: s.epoch.Load()}
	for _, p := range s.free {
		m.Free = append(m.Free, int64(p))
	}
	s.allocMu.Unlock()
	raw, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("file: encoding meta: %w", err)
	}
	tmp := filepath.Join(s.dir, metaName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("file: creating meta: %w", err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return fmt.Errorf("file: writing meta: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("file: syncing meta: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("file: closing meta: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, metaName)); err != nil {
		return fmt.Errorf("file: publishing meta: %w", err)
	}
	if d, err := os.Open(s.dir); err == nil {
		d.Sync() // make the rename durable; best-effort on filesystems without dir fsync
		d.Close()
	}
	return nil
}

// replay applies the write-ahead log to the page file, stopping at the
// first torn or corrupt frame. It returns the number of records applied
// and whether a torn tail was dropped.
func (s *Store) replay() (int, bool, error) {
	if _, err := s.wal.f.Seek(0, 0); err != nil {
		return 0, false, fmt.Errorf("file: seeking wal: %w", err)
	}
	return s.replayFrom(s.wal.f)
}

// replayFrom is replay's core, parameterised over the log source so tests
// can drive it against copies (idempotence: applying the same log twice
// yields identical page files).
func (s *Store) replayFrom(r io.Reader) (int, bool, error) {
	count := 0
	for {
		payload, err := readRecord(r)
		if err == io.EOF {
			return count, false, nil
		}
		if err != nil {
			// Torn tail: a frame past the last fsync. Nothing from here on
			// was acknowledged; drop it.
			return count, true, nil
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return count, true, nil
		}
		if err := s.apply(rec); err != nil {
			return count, false, err
		}
		count++
	}
}

// apply redoes one WAL record against the page file and allocation state.
func (s *Store) apply(rec walRecord) error {
	switch rec.kind {
	case recKindAlloc:
		s.allocMu.Lock()
		delete(s.freeSet, rec.page)
		for i, p := range s.free {
			if p == rec.page {
				s.free = append(s.free[:i], s.free[i+1:]...)
				break
			}
		}
		if rec.page >= s.next {
			s.next = rec.page + 1
		}
		err := s.extendLocked(rec.page)
		s.allocMu.Unlock()
		return err
	case recKindDealloc:
		s.allocMu.Lock()
		if _, dup := s.freeSet[rec.page]; !dup {
			s.free = append(s.free, rec.page)
			s.freeSet[rec.page] = struct{}{}
		}
		s.allocMu.Unlock()
		return nil
	case recKindPage:
		s.allocMu.Lock()
		err := s.extendLocked(rec.page)
		s.allocMu.Unlock()
		if err != nil {
			return err
		}
		// writeSlotLocked lays down a fresh trailer with the image, so
		// replay doubles as repair: a slot corrupted by the crash (torn or
		// bit-rotted) is rewritten verified as long as the WAL covers it.
		if err := s.writeSlotLocked(rec.page, rec.img); err != nil {
			return fmt.Errorf("file: replaying page %d: %w", rec.page, err)
		}
		return nil
	}
	return fmt.Errorf("file: replaying unknown record kind %d", rec.kind)
}

// slotSize is the on-disk footprint of one page: image plus trailer, or
// just the image on a legacy store.
func (s *Store) slotSize() int64 {
	if s.format == formatLegacy {
		return storage.PageSize
	}
	return storage.PageSize + trailerLen
}

// slotOff is the byte offset of page p's slot in pages.db.
func (s *Store) slotOff(p policy.PageID) int64 { return int64(p) * s.slotSize() }

// extendLocked grows pages.db to cover page p. Caller holds allocMu.
func (s *Store) extendLocked(p policy.PageID) error {
	want := (int64(p) + 1) * s.slotSize()
	if want <= s.size {
		return nil
	}
	if err := s.pages.Truncate(want); err != nil {
		return fmt.Errorf("file: extending page file to page %d: %w", p, mapNoSpace(err))
	}
	s.size = want
	return nil
}

// isAllocated reports whether p is a live page.
func (s *Store) isAllocated(p policy.PageID) bool {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	if p < 0 || p >= s.next {
		return false
	}
	_, freed := s.freeSet[p]
	return !freed
}

func (s *Store) stripe(p policy.PageID) *sync.RWMutex {
	return &s.latches[storage.StripeIndex(p, storage.DefaultStripes)]
}

// Read copies page p into buf.
func (s *Store) Read(ctx context.Context, p policy.PageID, buf []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(buf) != storage.PageSize {
		return fmt.Errorf("file: read buffer is %d bytes, want %d", len(buf), storage.PageSize)
	}
	if !s.isAllocated(p) {
		return fmt.Errorf("%w: read of page %d", storage.ErrPageNotAllocated, p)
	}
	lk := s.stripe(p)
	lk.RLock()
	_, err := s.pages.ReadAt(buf, s.slotOff(p))
	if err == nil && s.format == formatTrailer && s.cfg.VerifyReads {
		// Verify under the same latch hold as the payload read: a write
		// slipping between the two would pair a new image with an old
		// trailer and report corruption that never happened.
		err = s.verifySlotLocked(p, buf)
	}
	lk.RUnlock()
	if err != nil {
		return fmt.Errorf("file: reading page %d: %w", p, err)
	}
	s.reads.Add(1)
	return nil
}

// Write makes page p's new image durable: WAL append under the page's
// stripe latch (so the page file applies same-page images in log order),
// page-file write, then group-committed fsync before returning. When
// MaxWALBytes is set, the write that pushes the log past the bound detours
// through a checkpoint on its way out.
func (s *Store) Write(ctx context.Context, p policy.PageID, buf []byte) error {
	if err := s.write(ctx, p, buf); err != nil {
		return err
	}
	s.maybeCheckpoint()
	return nil
}

func (s *Store) write(ctx context.Context, p policy.PageID, buf []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(buf) != storage.PageSize {
		return fmt.Errorf("file: write buffer is %d bytes, want %d", len(buf), storage.PageSize)
	}
	if !s.isAllocated(p) {
		return fmt.Errorf("%w: write of page %d", storage.ErrPageNotAllocated, p)
	}
	s.ckpt.RLock()
	defer s.ckpt.RUnlock()
	var tc obs.TraceContext
	if s.cfg.Spans != nil {
		tc = obs.TraceFrom(ctx)
	}
	frame := encodePageRecord(p, buf)
	lk := s.stripe(p)
	lk.Lock()
	appendSpan := s.cfg.Spans.Start(tc, obs.SpanWALAppend)
	lsn, err := s.wal.append(frame)
	appendSpan.Finish(int64(p))
	if err != nil {
		lk.Unlock()
		return err
	}
	werr := s.writeSlotLocked(p, buf)
	lk.Unlock()
	if werr != nil {
		return fmt.Errorf("file: writing page %d: %w", p, werr)
	}
	syncSpan := s.cfg.Spans.Start(tc, obs.SpanWALFsync)
	err = s.wal.sync(lsn)
	syncSpan.Finish(int64(p))
	if err != nil {
		return err
	}
	s.writes.Add(1)
	return nil
}

// maybeCheckpoint takes the MaxWALBytes-forced durability barrier, at most
// one at a time. The caller's own write is already durable (WAL-acked), so
// a failed checkpoint must not fail it retroactively; the error is dropped
// here and real log trouble resurfaces through the wal's sticky error on
// the next operation.
func (s *Store) maybeCheckpoint() {
	if s.cfg.MaxWALBytes <= 0 || s.wal.bytes.Load() <= s.cfg.MaxWALBytes {
		return
	}
	if !s.ckptPending.CompareAndSwap(false, true) {
		return
	}
	defer s.ckptPending.Store(false)
	_ = s.checkpoint()
}

// Allocate reserves a page (reusing the lowest-cost free slot first) and
// logs the allocation so it survives a crash before the next checkpoint.
func (s *Store) Allocate() (policy.PageID, error) {
	s.ckpt.RLock()
	defer s.ckpt.RUnlock()
	s.allocMu.Lock()
	var p policy.PageID
	if n := len(s.free); n > 0 {
		p = s.free[n-1]
		s.free = s.free[:n-1]
		delete(s.freeSet, p)
	} else {
		p = s.next
		s.next++
	}
	if err := s.extendLocked(p); err != nil {
		s.undoAllocLocked(p)
		s.allocMu.Unlock()
		return 0, err
	}
	lsn, err := s.wal.append(encodeMetaRecord(recKindAlloc, p))
	if err != nil {
		s.undoAllocLocked(p)
		s.allocMu.Unlock()
		return 0, err
	}
	s.allocMu.Unlock()
	if err := s.wal.sync(lsn); err != nil {
		return 0, err
	}
	s.allocated.Add(1)
	return p, nil
}

// undoAllocLocked returns a just-picked page to the allocator after a
// failed Allocate. Caller holds allocMu.
func (s *Store) undoAllocLocked(p policy.PageID) {
	if p == s.next-1 {
		s.next--
		return
	}
	s.free = append(s.free, p)
	s.freeSet[p] = struct{}{}
}

// Deallocate releases page p for reuse.
func (s *Store) Deallocate(p policy.PageID) error {
	if !s.isAllocated(p) {
		return fmt.Errorf("%w: deallocate of page %d", storage.ErrPageNotAllocated, p)
	}
	s.ckpt.RLock()
	defer s.ckpt.RUnlock()
	s.allocMu.Lock()
	s.free = append(s.free, p)
	s.freeSet[p] = struct{}{}
	lsn, err := s.wal.append(encodeMetaRecord(recKindDealloc, p))
	s.allocMu.Unlock()
	if err != nil {
		return err
	}
	if err := s.wal.sync(lsn); err != nil {
		return err
	}
	s.deallocated.Add(1)
	return nil
}

// Flush is the checkpoint: fsync the page file, publish the allocation
// state, truncate the log. It runs with no operation in flight (the
// checkpoint lock), so the truncated log describes only page-file state
// the fsync just made durable.
func (s *Store) Flush(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.checkpoint()
}

func (s *Store) checkpoint() error {
	s.ckpt.Lock()
	defer s.ckpt.Unlock()
	if err := s.pages.Sync(); err != nil {
		return fmt.Errorf("file: syncing page file: %w", err)
	}
	if err := s.writeMeta(); err != nil {
		return err
	}
	if err := s.wal.reset(); err != nil {
		return err
	}
	s.checkpoints.Add(1)
	return nil
}

// Stats returns the operation ledger.
func (s *Store) Stats() storage.Stats {
	return storage.Stats{
		Reads:            s.reads.Load(),
		Writes:           s.writes.Load(),
		Allocated:        s.allocated.Load(),
		Deallocated:      s.deallocated.Load(),
		WALAppends:       s.wal.appends.Load(),
		WALSyncs:         s.wal.syncs.Load(),
		WALBytes:         s.wal.bytes.Load(),
		Checkpoints:      s.checkpoints.Load(),
		RecoveredRecords: s.recovered.Load(),
	}
}

// Recovery reports what crash recovery did when this store was opened.
func (s *Store) Recovery() storage.RecoveryInfo { return s.recovery }

// StripeOf returns the latch stripe serving page p.
func (s *Store) StripeOf(p policy.PageID) int {
	return storage.StripeIndex(p, storage.DefaultStripes)
}

// NumStripes returns the latch stripe count.
func (s *Store) NumStripes() int { return storage.DefaultStripes }

// NumPages returns the number of live pages.
func (s *Store) NumPages() int {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	return int(s.next) - len(s.free)
}

// Close checkpoints and releases the store's files. Idempotent.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	cerr := s.checkpoint()
	if err := s.pages.Close(); cerr == nil {
		cerr = err
	}
	if err := s.wal.f.Close(); cerr == nil {
		cerr = err
	}
	return cerr
}
