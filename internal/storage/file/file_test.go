package file

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/policy"
	"repro/internal/storage"
)

var ctx = context.Background()

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return s
}

func pageImage(fill byte) []byte {
	img := make([]byte, storage.PageSize)
	for i := range img {
		img[i] = fill
	}
	return img
}

func TestAllocateReadWriteRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	p := storage.MustAllocate(s)
	buf := make([]byte, storage.PageSize)
	if err := s.Read(ctx, p, buf); err != nil {
		t.Fatalf("read fresh page: %v", err)
	}
	if !bytes.Equal(buf, make([]byte, storage.PageSize)) {
		t.Error("fresh page not zeroed")
	}
	img := pageImage(0x3C)
	if err := s.Write(ctx, p, img); err != nil {
		t.Fatal(err)
	}
	if err := s.Read(ctx, p, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, img) {
		t.Error("read back differs from write")
	}
}

func TestUnallocatedAndBadBuffer(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	buf := make([]byte, storage.PageSize)
	if err := s.Read(ctx, 99, buf); !errors.Is(err, storage.ErrPageNotAllocated) {
		t.Errorf("read unallocated: %v", err)
	}
	if err := s.Write(ctx, 99, buf); !errors.Is(err, storage.ErrPageNotAllocated) {
		t.Errorf("write unallocated: %v", err)
	}
	if err := s.Deallocate(99); !errors.Is(err, storage.ErrPageNotAllocated) {
		t.Errorf("deallocate unallocated: %v", err)
	}
	p := storage.MustAllocate(s)
	if err := s.Read(ctx, p, make([]byte, 10)); err == nil {
		t.Error("short read buffer accepted")
	}
	if err := s.Write(ctx, p, make([]byte, storage.PageSize+1)); err == nil {
		t.Error("long write buffer accepted")
	}
}

func TestDurableAcrossCleanClose(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	a, b := storage.MustAllocate(s), storage.MustAllocate(s)
	if err := s.Write(ctx, a, pageImage('a')); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(ctx, b, pageImage('b')); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	defer s2.Close()
	ri := s2.Recovery()
	if !ri.Reopened {
		t.Error("reopen not reported")
	}
	if ri.Replayed != 0 {
		t.Errorf("clean close left %d records to replay", ri.Replayed)
	}
	buf := make([]byte, storage.PageSize)
	if err := s2.Read(ctx, a, buf); err != nil || buf[0] != 'a' {
		t.Errorf("page a after reopen: %v, first byte %q", err, buf[0])
	}
	if err := s2.Read(ctx, b, buf); err != nil || buf[0] != 'b' {
		t.Errorf("page b after reopen: %v, first byte %q", err, buf[0])
	}
	if s2.NumPages() != 2 {
		t.Errorf("NumPages = %d after reopen, want 2", s2.NumPages())
	}
}

// TestCrashRecovery abandons a store without Close — the in-process
// equivalent of kill -9 after the last acknowledged write — and verifies
// every acknowledged operation is replayed on reopen.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	a, b := storage.MustAllocate(s), storage.MustAllocate(s)
	if err := s.Write(ctx, a, pageImage(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(ctx, b, pageImage(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(ctx, a, pageImage(3)); err != nil {
		t.Fatal(err) // overwrite: replay must apply images in log order
	}
	// No Close, no Flush: all state lives in the WAL only.

	s2 := mustOpen(t, dir)
	defer s2.Close()
	ri := s2.Recovery()
	if ri.Replayed != 5 { // 2 allocs + 3 page images
		t.Errorf("Replayed = %d, want 5", ri.Replayed)
	}
	if ri.TailDropped {
		t.Error("clean log reported a torn tail")
	}
	buf := make([]byte, storage.PageSize)
	if err := s2.Read(ctx, a, buf); err != nil || buf[0] != 3 {
		t.Errorf("page a = %d after recovery (%v), want 3", buf[0], err)
	}
	if err := s2.Read(ctx, b, buf); err != nil || buf[0] != 2 {
		t.Errorf("page b = %d after recovery (%v), want 2", buf[0], err)
	}
	if got := s2.Stats().RecoveredRecords; got != 5 {
		t.Errorf("RecoveredRecords = %d, want 5", got)
	}
}

// TestTornTailDropped truncates the log mid-record — a crash inside the
// final, unacknowledged write — and expects recovery to keep everything
// before the tear and report the drop.
func TestTornTailDropped(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	a := storage.MustAllocate(s)
	if err := s.Write(ctx, a, pageImage(7)); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(ctx, a, pageImage(8)); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walName)
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, fi.Size()-100); err != nil {
		t.Fatal(err) // tear into the last page record
	}

	s2 := mustOpen(t, dir)
	defer s2.Close()
	ri := s2.Recovery()
	if !ri.TailDropped {
		t.Error("torn tail not reported")
	}
	if ri.Replayed != 2 { // alloc + first image survive, second image torn
		t.Errorf("Replayed = %d, want 2", ri.Replayed)
	}
	buf := make([]byte, storage.PageSize)
	if err := s2.Read(ctx, a, buf); err != nil || buf[0] != 7 {
		t.Errorf("page a = %d after torn recovery (%v), want first image 7", buf[0], err)
	}
}

// TestCorruptTailDropped flips a byte inside the last record: the checksum
// must reject it and recovery must stop there, keeping earlier records.
func TestCorruptTailDropped(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	a := storage.MustAllocate(s)
	if err := s.Write(ctx, a, pageImage(7)); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(ctx, a, pageImage(9)); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walName)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-10] ^= 0xFF
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	defer s2.Close()
	if ri := s2.Recovery(); !ri.TailDropped || ri.Replayed != 2 {
		t.Errorf("recovery = %+v, want torn tail after 2 records", ri)
	}
	buf := make([]byte, storage.PageSize)
	if err := s2.Read(ctx, a, buf); err != nil || buf[0] != 7 {
		t.Errorf("page a = %d (%v), want pre-corruption image 7", buf[0], err)
	}
}

// TestCheckpointTruncatesLog verifies Flush's contract: page file synced,
// allocation state published, WAL emptied — so the next recovery replays
// nothing.
func TestCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	p := storage.MustAllocate(s)
	if err := s.Write(ctx, p, pageImage(5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, walName)); err != nil || fi.Size() != 0 {
		t.Errorf("wal after checkpoint: size %d (%v), want 0", fi.Size(), err)
	}
	if got := s.Stats().Checkpoints; got == 0 {
		t.Error("checkpoint not counted")
	}
	// Crash now: recovery must come entirely from the checkpointed page
	// file, with nothing to replay.
	s2 := mustOpen(t, dir)
	defer s2.Close()
	if ri := s2.Recovery(); ri.Replayed != 0 || ri.TailDropped {
		t.Errorf("recovery after checkpoint = %+v, want empty replay", ri)
	}
	buf := make([]byte, storage.PageSize)
	if err := s2.Read(ctx, p, buf); err != nil || buf[0] != 5 {
		t.Errorf("page = %d (%v), want checkpointed image 5", buf[0], err)
	}
}

// copyDir clones a store directory, standing in for the block-level
// snapshot a crash leaves behind.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// readAllPages snapshots every live page image through the public API.
func readAllPages(t *testing.T, s *Store) map[policy.PageID][]byte {
	t.Helper()
	out := make(map[policy.PageID][]byte)
	for p := policy.PageID(0); p < s.next; p++ {
		if !s.isAllocated(p) {
			continue
		}
		buf := make([]byte, storage.PageSize)
		if err := s.Read(ctx, p, buf); err != nil {
			t.Fatal(err)
		}
		out[p] = buf
	}
	return out
}

// TestRecoveryIdempotence replays the same crash image twice (two
// independent copies) and again after the first recovery's checkpoint:
// all three must yield identical page images and allocation state.
func TestRecoveryIdempotence(t *testing.T) {
	origin := t.TempDir()
	s := mustOpen(t, origin)
	a, b := storage.MustAllocate(s), storage.MustAllocate(s)
	if err := s.Write(ctx, a, pageImage(11)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(ctx); err != nil {
		t.Fatal(err) // some state checkpointed…
	}
	if err := s.Write(ctx, b, pageImage(22)); err != nil {
		t.Fatal(err) // …and some only in the WAL
	}
	if err := s.Write(ctx, a, pageImage(33)); err != nil {
		t.Fatal(err)
	}
	// Crash: replay the same image from two independent copies.
	copy1, copy2 := copyDir(t, origin), copyDir(t, origin)

	r1 := mustOpen(t, copy1)
	pages1 := readAllPages(t, r1)
	rec1 := r1.Recovery()
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}

	r2 := mustOpen(t, copy2)
	pages2 := readAllPages(t, r2)
	rec2 := r2.Recovery()
	r2.Close()

	if rec1.Replayed != rec2.Replayed || rec1.TailDropped != rec2.TailDropped {
		t.Errorf("recovery reports diverge: %+v vs %+v", rec1, rec2)
	}
	if len(pages1) != len(pages2) {
		t.Fatalf("page counts diverge: %d vs %d", len(pages1), len(pages2))
	}
	for p, img := range pages1 {
		if !bytes.Equal(img, pages2[p]) {
			t.Errorf("page %d diverged between identical recoveries", p)
		}
	}

	// Recovering the already-recovered store (checkpointed by its first
	// open) must change nothing: replay after a checkpoint is empty.
	r3 := mustOpen(t, copy1)
	defer r3.Close()
	if ri := r3.Recovery(); ri.Replayed != 0 {
		t.Errorf("second recovery replayed %d records, want 0", ri.Replayed)
	}
	pages3 := readAllPages(t, r3)
	for p, img := range pages1 {
		if !bytes.Equal(img, pages3[p]) {
			t.Errorf("page %d changed across recover→checkpoint→recover", p)
		}
	}
	if got, want := r3.NumPages(), len(pages1); got != want {
		t.Errorf("NumPages = %d after re-recovery, want %d", got, want)
	}
}

func TestDeallocateSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	a, b := storage.MustAllocate(s), storage.MustAllocate(s)
	if err := s.Write(ctx, b, pageImage(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Deallocate(a); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir) // crash: no close
	defer s2.Close()
	if s2.isAllocated(a) {
		t.Error("deallocated page came back after recovery")
	}
	if !s2.isAllocated(b) {
		t.Error("live page lost after recovery")
	}
	// The freed slot is reused before fresh extension.
	if got := storage.MustAllocate(s2); got != a {
		t.Errorf("Allocate after recovery = %d, want freed page %d", got, a)
	}
}

func TestConcurrentWritersAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	const pages = 16
	ids := make([]policy.PageID, pages)
	for i := range ids {
		ids[i] = storage.MustAllocate(s)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			img := make([]byte, storage.PageSize)
			buf := make([]byte, storage.PageSize)
			for i := 0; i < 50; i++ {
				p := ids[(g*5+i)%pages]
				img[0] = byte(g + 1)
				if err := s.Write(ctx, p, img); err != nil {
					t.Error(err)
					return
				}
				if err := s.Read(ctx, p, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := s.Flush(ctx); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	st := s.Stats()
	if st.Reads != 200 || st.Writes != 200 {
		t.Errorf("reads/writes = %d/%d, want 200/200", st.Reads, st.Writes)
	}
	if st.WALSyncs > st.WALAppends {
		t.Errorf("more syncs (%d) than appends (%d): group commit broken", st.WALSyncs, st.WALAppends)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Every acknowledged write is recoverable.
	s2 := mustOpen(t, dir)
	defer s2.Close()
	buf := make([]byte, storage.PageSize)
	for _, p := range ids {
		if err := s2.Read(ctx, p, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] < 1 || buf[0] > 4 {
			t.Errorf("page %d holds %d, not any writer's image", p, buf[0])
		}
	}
}

func TestContextCancelled(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	p := storage.MustAllocate(s)
	done, cancel := context.WithCancel(context.Background())
	cancel()
	buf := make([]byte, storage.PageSize)
	if err := s.Read(done, p, buf); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled read: %v", err)
	}
	if err := s.Write(done, p, buf); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled write: %v", err)
	}
}

// TestDurableBackendInterface pins the full contract, including under the
// fault-injection and breaker wrappers the db layer stacks on top.
func TestDurableBackendInterface(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	var b storage.DurableBackend = s
	if b.NumStripes() != storage.DefaultStripes {
		t.Errorf("NumStripes = %d", b.NumStripes())
	}
	if got := b.StripeOf(42); got != storage.StripeIndex(42, storage.DefaultStripes) {
		t.Errorf("StripeOf(42) = %d", got)
	}
	f := storage.WithFaults(b)
	f.SetFaults(storage.NewFaultPlan(1, storage.FaultRule{Op: storage.OpWrite, Count: 1}))
	p := storage.MustAllocate(f)
	img := pageImage(1)
	if err := f.Write(ctx, p, img); !errors.Is(err, storage.ErrInjectedFault) {
		t.Fatalf("injected fault: %v", err)
	}
	if err := f.Write(ctx, p, img); err != nil {
		t.Fatalf("write after fault budget: %v", err)
	}
	st := f.Stats()
	if st.WriteFaults != 1 || st.Writes != 1 {
		t.Errorf("faults/writes = %d/%d, want 1/1", st.WriteFaults, st.Writes)
	}
	// The faulted write never reached the WAL.
	if st.WALAppends != 2 { // alloc record + one successful page record
		t.Errorf("WALAppends = %d, want 2", st.WALAppends)
	}
}
