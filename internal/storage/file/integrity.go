// Page-integrity machinery for the file backend: the per-slot trailer
// codec, read-time verification, targeted WAL-tail repair, and the offline
// corruption helper the crash-smoke harness uses.
//
// Trailer layout (24 bytes, immediately after the 4 KByte image):
//
//	bytes  0-3   magic "LKPT"
//	bytes  4-11  write epoch, little-endian (store-wide counter)
//	bytes 12-19  page id, little-endian
//	bytes 20-23  CRC32-C (Castagnoli) over image ++ trailer[0:20]
//
// The checksum covers the stored page id, so a structurally intact slot
// copied to the wrong offset (a misdirected write) still verifies its CRC
// — and is then unmasked by the id mismatch, classified CorruptMisdirect
// rather than CorruptChecksum. An all-zero trailer is valid only over an
// all-zero image: that is the shape of a sparse, never-written slot.
package file

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"syscall"

	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/storage"
)

const (
	trailerLen   = 24
	trailerMagic = "LKPT"
)

// mapNoSpace rewraps a device-full failure as the typed, permanent
// storage.ErrNoSpace so the breaker and retry ladder can tell "disk is
// full" from "disk is flaky". Any other error passes through untouched.
func mapNoSpace(err error) error {
	if errors.Is(err, syscall.ENOSPC) {
		return fmt.Errorf("%w: %v", storage.ErrNoSpace, err)
	}
	return err
}

// makeTrailer builds the trailer for page p's image at the given epoch.
func makeTrailer(p policy.PageID, epoch uint64, img []byte) [trailerLen]byte {
	var tr [trailerLen]byte
	copy(tr[0:4], trailerMagic)
	binary.LittleEndian.PutUint64(tr[4:12], epoch)
	binary.LittleEndian.PutUint64(tr[12:20], uint64(p))
	crc := crc32.Checksum(img, crcTable)
	crc = crc32.Update(crc, crcTable, tr[0:20])
	binary.LittleEndian.PutUint32(tr[20:24], crc)
	return tr
}

// checkTrailer verifies img against its trailer as page p's contents. It
// returns nil or a *storage.ErrCorrupt classifying the damage.
func checkTrailer(p policy.PageID, img, tr []byte) error {
	if isZero(tr) {
		// A hole: valid only if the image is the hole's zeros too.
		if isZero(img) {
			return nil
		}
		return &storage.ErrCorrupt{Page: p, Kind: storage.CorruptChecksum}
	}
	crc := crc32.Checksum(img, crcTable)
	crc = crc32.Update(crc, crcTable, tr[0:20])
	if string(tr[0:4]) != trailerMagic || crc != binary.LittleEndian.Uint32(tr[20:24]) {
		return &storage.ErrCorrupt{Page: p, Kind: storage.CorruptChecksum}
	}
	if got := policy.PageID(binary.LittleEndian.Uint64(tr[12:20])); got != p {
		return &storage.ErrCorrupt{Page: p, Kind: storage.CorruptMisdirect}
	}
	return nil
}

func isZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// writeSlotLocked lays down img and a freshly stamped trailer as page p's
// slot. The caller holds p's stripe latch exclusively (or is single-
// threaded: replay, repair under its own exclusive latch).
func (s *Store) writeSlotLocked(p policy.PageID, img []byte) error {
	off := s.slotOff(p)
	if _, err := s.pages.WriteAt(img, off); err != nil {
		return mapNoSpace(err)
	}
	if s.format == formatLegacy {
		return nil
	}
	tr := makeTrailer(p, s.epoch.Add(1), img)
	if _, err := s.pages.WriteAt(tr[:], off+storage.PageSize); err != nil {
		return mapNoSpace(err)
	}
	return nil
}

// verifySlotLocked checks img (already read from p's slot) against the
// trailer on disk. The caller holds p's stripe latch (shared suffices) so
// image and trailer are from the same write. Legacy stores verify nothing.
func (s *Store) verifySlotLocked(p policy.PageID, img []byte) error {
	if s.format == formatLegacy {
		return nil
	}
	var tr [trailerLen]byte
	if _, err := s.pages.ReadAt(tr[:], s.slotOff(p)+storage.PageSize); err != nil {
		return fmt.Errorf("file: reading trailer of page %d: %w", p, err)
	}
	return checkTrailer(p, img, tr[:])
}

// RepairPage implements storage.Repairer: it re-verifies page p's slot and,
// if corrupt, rewrites it from the most recent image in the write-ahead
// log. The WAL holds every image written since the last checkpoint, so
// damage to recently written slots heals; a corrupt slot with no logged
// image has no redundant copy and the corruption error stands.
func (s *Store) RepairPage(ctx context.Context, p policy.PageID) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if !s.isAllocated(p) {
		return fmt.Errorf("%w: repair of page %d", storage.ErrPageNotAllocated, p)
	}
	// Hold off checkpoints (which truncate the log mid-scan) and take the
	// stripe exclusively: repair is a write if it proceeds.
	s.ckpt.RLock()
	defer s.ckpt.RUnlock()
	lk := s.stripe(p)
	lk.Lock()
	defer lk.Unlock()

	buf := make([]byte, storage.PageSize)
	if _, err := s.pages.ReadAt(buf, s.slotOff(p)); err != nil {
		return fmt.Errorf("file: repair read of page %d: %w", p, err)
	}
	verr := s.verifySlotLocked(p, buf)
	if verr == nil {
		return nil // already intact; nothing to repair
	}
	img, err := s.walImage(p)
	if err != nil {
		return fmt.Errorf("file: repair of page %d: %w", p, err)
	}
	if img == nil {
		return fmt.Errorf("file: page %d unrepairable (no WAL image): %w", p, verr)
	}
	if err := s.writeSlotLocked(p, img); err != nil {
		return fmt.Errorf("file: repairing page %d: %w", p, err)
	}
	if err := s.verifySlotLocked(p, img); err != nil {
		return fmt.Errorf("file: page %d corrupt after repair: %w", p, err)
	}
	return nil
}

// walImage scans the log through a separate read-only handle and returns
// the last fully synced image of page p, or nil if the log holds none. The
// scan stops at the first torn frame — concurrent appenders may be
// mid-frame at the moving tail, but records for p itself cannot be (the
// caller holds p's stripe latch).
func (s *Store) walImage(p policy.PageID) ([]byte, error) {
	f, err := os.Open(filepath.Join(s.dir, walName))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var img []byte
	for {
		payload, err := readRecord(f)
		if err != nil {
			return img, nil // io.EOF (clean end) or a torn tail: scan over
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return img, nil
		}
		if rec.kind == recKindPage && rec.page == p {
			img = rec.img // aliases this record's freshly allocated payload
		}
	}
}

// CorruptPages flips one image byte in up to n distinct pages of the
// closed store at dir, choosing among pages with an image in the WAL so a
// subsequent Open's replay (or RepairPage) can heal them. It returns the
// page ids damaged, possibly fewer than n if the log covers fewer pages.
// It is an offline test/chaos helper — never call it on an open store.
func CorruptPages(dir string, n int, seed uint64) ([]policy.PageID, error) {
	raw, err := os.ReadFile(filepath.Join(dir, metaName))
	if err != nil {
		return nil, fmt.Errorf("file: corrupt-pages: %w", err)
	}
	var m meta
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("file: corrupt-pages: parsing meta: %w", err)
	}
	slot := int64(storage.PageSize)
	if m.Format == formatTrailer {
		slot += trailerLen
	}

	walF, err := os.Open(filepath.Join(dir, walName))
	if err != nil {
		return nil, fmt.Errorf("file: corrupt-pages: %w", err)
	}
	var ids []policy.PageID
	seen := make(map[policy.PageID]struct{})
	for {
		payload, err := readRecord(walF)
		if err != nil {
			break // clean end or torn tail
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			break
		}
		if rec.kind != recKindPage {
			continue
		}
		if _, dup := seen[rec.page]; !dup {
			seen[rec.page] = struct{}{}
			ids = append(ids, rec.page)
		}
	}
	walF.Close()

	rng := stats.NewRNG(seed)
	for i := len(ids) - 1; i > 0; i-- {
		j := int(rng.Uint64() % uint64(i+1))
		ids[i], ids[j] = ids[j], ids[i]
	}
	if n < len(ids) {
		ids = ids[:n]
	}
	if len(ids) == 0 {
		return nil, nil
	}

	pages, err := os.OpenFile(filepath.Join(dir, pagesName), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("file: corrupt-pages: %w", err)
	}
	defer pages.Close()
	for _, p := range ids {
		off := int64(p)*slot + int64(rng.Uint64()%storage.PageSize)
		var b [1]byte
		if _, err := pages.ReadAt(b[:], off); err != nil && err != io.EOF {
			return nil, fmt.Errorf("file: corrupt-pages: reading page %d: %w", p, err)
		}
		b[0] ^= 0xFF
		if _, err := pages.WriteAt(b[:], off); err != nil {
			return nil, fmt.Errorf("file: corrupt-pages: flipping page %d: %w", p, err)
		}
	}
	if err := pages.Sync(); err != nil {
		return nil, fmt.Errorf("file: corrupt-pages: %w", err)
	}
	return ids, nil
}
