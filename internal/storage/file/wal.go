// WAL record codec and group-committed log for the file backend.
//
// The log is a sequence of length-prefixed, checksummed frames — the same
// framing discipline as the network wire protocol (internal/server/wire),
// applied to durability instead of transport:
//
//	bytes 0-3  payload length, big-endian
//	bytes 4-7  CRC32-C (Castagnoli) of the payload, big-endian
//	bytes 8... payload
//
// Payloads are typed by their first byte:
//
//	kind 1 (page image): page id (8 bytes BE) + the full 4 KByte image
//	kind 2 (alloc):      page id (8 bytes BE)
//	kind 3 (dealloc):    page id (8 bytes BE)
//
// Recovery replays records in order and stops at the first frame that is
// short, oversized, or fails its checksum: everything before that point was
// acknowledged (fsynced before the write returned), everything after is a
// torn tail from the crash and is discarded. Replay is redo-only and
// idempotent — records carry full page images, so applying a prefix twice
// converges to the same page file.
package file

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/policy"
	"repro/internal/storage"
)

const (
	recHeader = 8 // length + CRC
	// Record kinds.
	recKindPage    = 1
	recKindAlloc   = 2
	recKindDealloc = 3
	// maxPayload bounds a sane payload: kind + page id + page image.
	maxPayload = 1 + 8 + storage.PageSize
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errTornRecord reports a frame that cannot have been fully synced: replay
// treats it (and everything after) as the crash's torn tail.
var errTornRecord = errors.New("file: torn wal record")

// walRecord is a decoded WAL payload.
type walRecord struct {
	kind byte
	page policy.PageID
	img  []byte // page image for recKindPage, else nil
}

// encodeRecord frames a payload: header (length, CRC32-C) + payload.
func encodeRecord(payload []byte) []byte {
	frame := make([]byte, recHeader+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[recHeader:], payload)
	return frame
}

// encodePageRecord builds the frame for a page-image record.
func encodePageRecord(p policy.PageID, img []byte) []byte {
	payload := make([]byte, 1+8+len(img))
	payload[0] = recKindPage
	binary.BigEndian.PutUint64(payload[1:9], uint64(p))
	copy(payload[9:], img)
	return encodeRecord(payload)
}

// encodeMetaRecord builds the frame for an alloc or dealloc record.
func encodeMetaRecord(kind byte, p policy.PageID) []byte {
	payload := make([]byte, 1+8)
	payload[0] = kind
	binary.BigEndian.PutUint64(payload[1:9], uint64(p))
	return encodeRecord(payload)
}

// decodeRecord parses a payload into a walRecord. The image slice aliases
// the payload.
func decodeRecord(payload []byte) (walRecord, error) {
	if len(payload) < 1+8 {
		return walRecord{}, fmt.Errorf("%w: payload %d bytes", errTornRecord, len(payload))
	}
	rec := walRecord{
		kind: payload[0],
		page: policy.PageID(binary.BigEndian.Uint64(payload[1:9])),
	}
	switch rec.kind {
	case recKindPage:
		if len(payload) != 1+8+storage.PageSize {
			return walRecord{}, fmt.Errorf("%w: page record payload %d bytes", errTornRecord, len(payload))
		}
		rec.img = payload[9:]
	case recKindAlloc, recKindDealloc:
		if len(payload) != 1+8 {
			return walRecord{}, fmt.Errorf("%w: meta record payload %d bytes", errTornRecord, len(payload))
		}
	default:
		return walRecord{}, fmt.Errorf("%w: unknown kind %d", errTornRecord, rec.kind)
	}
	if rec.page < 0 {
		return walRecord{}, fmt.Errorf("%w: negative page id %d", errTornRecord, rec.page)
	}
	return rec, nil
}

// readRecord reads one framed payload from r. It returns io.EOF at a clean
// end of log and errTornRecord (wrapped) for a short, oversized, or
// checksum-failing frame.
func readRecord(r io.Reader) ([]byte, error) {
	var hdr [recHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: short header: %v", errTornRecord, err)
	}
	length := binary.BigEndian.Uint32(hdr[0:4])
	if length == 0 || length > maxPayload {
		return nil, fmt.Errorf("%w: payload length %d", errTornRecord, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: short payload: %v", errTornRecord, err)
	}
	if got, want := crc32.Checksum(payload, crcTable), binary.BigEndian.Uint32(hdr[4:8]); got != want {
		return nil, fmt.Errorf("%w: checksum %08x, frame says %08x", errTornRecord, got, want)
	}
	return payload, nil
}

// wal is the group-committed write-ahead log. Appends serialise on the
// mutex and receive an LSN; sync(lsn) returns once everything up to lsn is
// fsynced, batching concurrent committers behind one fsync: the first
// waiter becomes the leader and syncs everything appended so far, followers
// park on the condition variable and are released by the leader's
// broadcast (the same leader/follower shape as the pool's read coalescing).
type wal struct {
	mu       sync.Mutex
	cond     *sync.Cond
	f        *os.File
	appended uint64 // LSN of the last appended record
	synced   uint64 // LSN through which the log is known durable
	syncing  bool   // a leader's fsync is in flight
	err      error  // sticky: a failed fsync poisons the log

	appends atomic.Uint64
	syncs   atomic.Uint64
	// bytes is the current log length — the store's MaxWALBytes
	// forced-checkpoint trigger and the WALBytes stats gauge read it.
	bytes atomic.Int64
}

func newWAL(f *os.File) *wal {
	w := &wal{f: f}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// append writes one framed record and returns its LSN. The caller must
// sync(lsn) before acknowledging the operation the record describes.
func (w *wal) append(frame []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if _, err := w.f.Write(frame); err != nil {
		w.err = fmt.Errorf("file: wal append: %w", mapNoSpace(err))
		w.cond.Broadcast()
		return 0, w.err
	}
	w.appended++
	w.appends.Add(1)
	w.bytes.Add(int64(len(frame)))
	return w.appended, nil
}

// sync blocks until the log is durable through lsn (group commit).
func (w *wal) sync(lsn uint64) error {
	w.mu.Lock()
	for {
		if w.err != nil {
			w.mu.Unlock()
			return w.err
		}
		if w.synced >= lsn {
			w.mu.Unlock()
			return nil
		}
		if !w.syncing {
			break // become the leader
		}
		w.cond.Wait() // follower: the in-flight fsync may cover lsn
	}
	w.syncing = true
	target := w.appended
	w.mu.Unlock()

	err := w.f.Sync()

	w.mu.Lock()
	w.syncing = false
	if err != nil {
		w.err = fmt.Errorf("file: wal fsync: %w", err)
	} else {
		w.synced = target
		w.syncs.Add(1)
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	if err != nil {
		return fmt.Errorf("file: wal fsync: %w", err)
	}
	return nil
}

// reset truncates the log after a checkpoint. The caller must exclude
// concurrent appenders (the store's checkpoint lock does).
func (w *wal) reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := w.f.Truncate(0); err != nil {
		w.err = fmt.Errorf("file: wal truncate: %w", err)
		return w.err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		w.err = fmt.Errorf("file: wal seek: %w", err)
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("file: wal truncate fsync: %w", err)
		return w.err
	}
	w.appended, w.synced = 0, 0
	w.bytes.Store(0)
	return nil
}
