// Package storage defines the page-storage seam of the stack: the Backend
// interface every page store implements, the shared Stats ledger, transient
// versus permanent error classification, and backend-agnostic wrappers for
// deterministic fault injection (WithFaults), per-stripe circuit breaking
// (WithBreaker) and latency instrumentation (WithMetrics).
//
// Two backends exist: storage/sim, the in-memory simulated disk the paper's
// experiments run on, and storage/file, a durable page file with a
// group-committed write-ahead log and redo-only crash recovery. The buffer
// pool, the db layer, and the observability assembly depend only on the
// interface, so the wrappers compose over either backend — fault storms and
// breaker protection come for free on the durable store.
package storage

import (
	"context"
	"errors"

	"repro/internal/policy"
)

// PageSize is the page size in bytes for every backend, the paper's
// canonical 4 KByte page (§2.1.2).
const PageSize = 4096

// DefaultStripes is the stripe count backends partition their page stores
// (and health accounting) into. Must be a power of two.
const DefaultStripes = 32

// ErrPageNotAllocated reports access to a page id that was never allocated
// or has been deallocated.
var ErrPageNotAllocated = errors.New("storage: page not allocated")

// Stats reports cumulative backend activity. The fault counters are
// maintained by the WithFaults wrapper; the WAL and checkpoint counters are
// zero on backends without a log (the simulator).
type Stats struct {
	Reads       uint64
	Writes      uint64
	Allocated   uint64
	Deallocated uint64
	// ReadFaults and WriteFaults count operations failed by an armed
	// FaultPlan. Faulted operations transfer no data and are not counted
	// in Reads/Writes, but on the simulator they still cost service time
	// (the arm still moved).
	ReadFaults  uint64
	WriteFaults uint64
	// ServiceMicros is the total simulated service time of all operations
	// (simulator only; the file backend reports wall latency through the
	// WithMetrics histograms instead).
	ServiceMicros int64
	// WALAppends and WALSyncs count write-ahead-log records appended and
	// group-commit fsync batches issued (file backend only). Appends per
	// sync is the group-commit batching factor.
	WALAppends uint64
	WALSyncs   uint64
	// Checkpoints counts durability barriers taken: page file fsynced, meta
	// rewritten, WAL truncated (file backend only).
	Checkpoints uint64
	// RecoveredRecords counts WAL records replayed by the most recent open
	// (file backend only).
	RecoveredRecords uint64
	// WALBytes is the current write-ahead-log length in bytes — a gauge,
	// not a counter: it grows with appends and drops to zero at every
	// checkpoint (file backend only).
	WALBytes int64
}

// Backend is a page store: the disk under the buffer pool. Implementations
// must be safe for concurrent use; Read and Write on different pages should
// proceed in parallel (stores partition their pages into NumStripes latch
// stripes keyed by StripeOf).
//
// Read and Write honour ctx only at natural blocking points; both require
// buf to hold exactly PageSize bytes. Errors are classified by IsTransient:
// a transient failure may succeed if reissued (the pool's retry ladder keys
// off this), a permanent one cannot.
type Backend interface {
	// Read copies page p into buf.
	Read(ctx context.Context, p policy.PageID, buf []byte) error
	// Write stores buf as the new contents of page p. On a durable backend
	// a nil return means the write is on stable storage (logged and
	// group-committed), though not yet checkpointed.
	Write(ctx context.Context, p policy.PageID, buf []byte) error
	// Allocate reserves a fresh zeroed page and returns its id. A durable
	// backend may fail (log append, file extension); the simulator never
	// does.
	Allocate() (policy.PageID, error)
	// Deallocate releases a page. Further access to it fails with
	// ErrPageNotAllocated.
	Deallocate(p policy.PageID) error
	// Flush is the durability barrier: on a durable backend it checkpoints
	// (page file synced, WAL truncated); on the simulator it is a no-op.
	// The pool calls it at the end of every FlushAll sweep, so the server's
	// FLUSH barrier doubles as the checkpoint trigger.
	Flush(ctx context.Context) error
	// Stats returns a snapshot of cumulative activity. Counters are
	// individually exact but not mutually consistent under concurrency.
	Stats() Stats
	// StripeOf returns the latch stripe of page p, in [0, NumStripes()).
	// Callers that track per-device-region health (the circuit breaker)
	// key their state by it.
	StripeOf(p policy.PageID) int
	// NumStripes returns the number of page-store partitions.
	NumStripes() int
	// NumPages returns the number of currently allocated pages.
	NumPages() int
	// Close releases the backend's resources. Callers flush first; Close
	// does not checkpoint.
	Close() error
}

// RecoveryInfo reports what a durable backend's open-time recovery did.
type RecoveryInfo struct {
	// Replayed is the number of WAL records applied.
	Replayed int
	// TailDropped reports that replay stopped at a truncated or
	// corrupt-checksum record before the log's end — the expected shape of
	// a crash mid-append; everything before the tear was applied.
	TailDropped bool
	// Reopened reports that the backend attached to an existing store
	// (false for a freshly initialised directory).
	Reopened bool
}

// DurableBackend is implemented by backends whose pages survive process
// restart. The db layer keys its catalog/reattach protocol off it.
type DurableBackend interface {
	Backend
	// Recovery reports what the open-time WAL replay did.
	Recovery() RecoveryInfo
}

// StripeIndex hashes page p onto one of n stripes (n a power of two) with
// the SplitMix64 finaliser, so adjacent page ids land on different stripes.
// Backends share it so a breaker keyed by one backend's StripeOf stays
// valid across backends.
func StripeIndex(p policy.PageID, n int) int {
	z := uint64(p) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int((z ^ (z >> 31)) & uint64(n-1))
}

// MustAllocate allocates a page and panics on failure. Tests and setup
// code over the simulated backend (whose Allocate cannot fail) use it to
// keep allocation loops terse.
func MustAllocate(b Backend) policy.PageID {
	p, err := b.Allocate()
	if err != nil {
		panic(err)
	}
	return p
}
