package storage

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/policy"
)

// This file implements the storage circuit breaker: per backend stripe, a
// closed/open/half-open state machine over the outcomes of I/O attempts.
// Sustained failures on a stripe open its circuit, after which reads and
// writes touching that stripe fail fast with ErrUnavailable instead of
// queueing behind a device region that is not answering. After a cooldown
// the circuit admits one probe at a time (half-open); enough consecutive
// probe successes close it again.
//
// The breaker is packaged as a Backend wrapper (WithBreaker) so both the
// simulator and the durable file store get the same protection; the buffer
// pool installs it over whatever backend it is given.

// ErrUnavailable reports an operation refused locally because the circuit
// breaker for its stripe is open. No backend attempt was made: the caller
// can retry after the breaker's cooldown, serve from memory, or surface
// the unavailability. It is permanent under IsTransient — reissuing the
// identical request before the cooldown cannot change the outcome.
var ErrUnavailable = errors.New("storage: disk unavailable (circuit breaker open)")

// BreakerConfig tunes the storage circuit breaker.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count on one stripe that opens
	// the stripe's circuit. Zero (or negative) disables the breaker.
	Threshold int
	// Cooldown is how long an open circuit rejects traffic before admitting
	// a half-open probe. Zero selects 50ms.
	Cooldown time.Duration
	// Probes is the number of consecutive successful half-open probes that
	// close the circuit. Zero selects 2.
	Probes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Cooldown <= 0 {
		c.Cooldown = 50 * time.Millisecond
	}
	if c.Probes <= 0 {
		c.Probes = 2
	}
	return c
}

// Breaker states. A stripe starts closed (traffic flows, failures are
// counted), opens at Threshold consecutive failures (traffic is refused),
// turns half-open after Cooldown (one probe in flight at a time), and
// closes again after Probes consecutive probe successes — or re-opens on
// the first probe failure.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is the all-stripes state machine; a nil *breaker (disabled)
// admits everything and records nothing.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time
	st  []breakerStripe
}

type breakerStripe struct {
	mu        sync.Mutex
	state     int
	failures  int       // consecutive failures while closed
	successes int       // consecutive probe successes while half-open
	probing   bool      // a half-open probe is in flight
	openedAt  time.Time // when the circuit last opened
	trips     uint64    // times this circuit has opened
}

// newBreaker returns a breaker over the given stripe count, or nil
// (disabled) when cfg.Threshold is not positive. now supplies the clock;
// tests inject a fake one.
func newBreaker(cfg BreakerConfig, stripes int, now func() time.Time) *breaker {
	if cfg.Threshold <= 0 {
		return nil
	}
	return &breaker{cfg: cfg.withDefaults(), now: now, st: make([]breakerStripe, stripes)}
}

// allow asks to admit one attempt on the stripe. A true return must be
// matched by exactly one record call with the attempt's outcome (in the
// half-open state the admission holds the stripe's single probe slot until
// record releases it). A false return means the circuit refused the attempt.
func (b *breaker) allow(stripe int) bool {
	if b == nil {
		return true
	}
	s := &b.st[stripe]
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(s.openedAt) < b.cfg.Cooldown {
			return false
		}
		s.state = breakerHalfOpen
		s.successes = 0
		s.probing = true
		return true
	default: // breakerHalfOpen
		if s.probing {
			return false
		}
		s.probing = true
		return true
	}
}

// ready reports, without consuming a probe slot, whether allow could admit
// an attempt on the stripe right now. The pool's fetch-miss path uses it to
// fail fast before doing any frame work.
func (b *breaker) ready(stripe int) bool {
	if b == nil {
		return true
	}
	s := &b.st[stripe]
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case breakerClosed:
		return true
	case breakerOpen:
		return b.now().Sub(s.openedAt) >= b.cfg.Cooldown
	default:
		return !s.probing
	}
}

// record reports the outcome of an attempt admitted by allow.
func (b *breaker) record(stripe int, success bool) {
	if b == nil {
		return
	}
	s := &b.st[stripe]
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case breakerClosed:
		if success {
			s.failures = 0
			return
		}
		s.failures++
		if s.failures >= b.cfg.Threshold {
			s.open(b.now())
		}
	case breakerHalfOpen:
		s.probing = false
		if success {
			s.successes++
			if s.successes >= b.cfg.Probes {
				s.state = breakerClosed
				s.failures = 0
			}
			return
		}
		s.open(b.now())
	case breakerOpen:
		// A straggler admitted before the trip finished late; the cooldown
		// clock stands.
	}
}

// open transitions the stripe to the open state. Callers hold s.mu.
func (s *breakerStripe) open(now time.Time) {
	s.state = breakerOpen
	s.openedAt = now
	s.failures = 0
	s.successes = 0
	s.probing = false
	s.trips++
}

// tripCount returns the total number of circuit openings across all stripes.
func (b *breaker) tripCount() uint64 {
	if b == nil {
		return 0
	}
	var n uint64
	for i := range b.st {
		s := &b.st[i]
		s.mu.Lock()
		n += s.trips
		s.mu.Unlock()
	}
	return n
}

// openStripes returns how many stripes are currently in the open state
// (past-cooldown open stripes included: they stay open until a probe runs).
func (b *breaker) openStripes() int {
	if b == nil {
		return 0
	}
	n := 0
	for i := range b.st {
		s := &b.st[i]
		s.mu.Lock()
		if s.state == breakerOpen {
			n++
		}
		s.mu.Unlock()
	}
	return n
}

// Breaker is a Backend wrapper gating every Read and Write through the
// per-stripe circuit: a refused operation fails fast with ErrUnavailable
// and never reaches the inner backend. Allocate, Deallocate and Flush pass
// through ungated — they are not per-stripe device traffic.
//
// All query methods are safe on a nil *Breaker (disabled: everything
// admitted, nothing counted), so callers can hold one unconditionally.
type Breaker struct {
	inner Backend
	b     *breaker
}

// WithBreaker wraps inner with a circuit breaker sized to its stripe count.
// It returns nil when cfg.Threshold is not positive — callers that keep the
// typed nil may still call Ready/Trips/OpenStripes on it. now supplies the
// clock (tests inject a fake one; production passes time.Now).
func WithBreaker(inner Backend, cfg BreakerConfig, now func() time.Time) *Breaker {
	b := newBreaker(cfg, inner.NumStripes(), now)
	if b == nil {
		return nil
	}
	return &Breaker{inner: inner, b: b}
}

// Inner returns the wrapped backend.
func (br *Breaker) Inner() Backend { return br.inner }

// Read implements Backend: one breaker admission, one attempt, one outcome
// record.
func (br *Breaker) Read(ctx context.Context, p policy.PageID, buf []byte) error {
	stripe := br.inner.StripeOf(p)
	if !br.b.allow(stripe) {
		return fmt.Errorf("read page %d: %w", p, ErrUnavailable)
	}
	err := br.inner.Read(ctx, p, buf)
	br.b.record(stripe, err == nil)
	return err
}

// Write implements Backend, mirroring Read.
func (br *Breaker) Write(ctx context.Context, p policy.PageID, buf []byte) error {
	stripe := br.inner.StripeOf(p)
	if !br.b.allow(stripe) {
		return fmt.Errorf("write page %d: %w", p, ErrUnavailable)
	}
	err := br.inner.Write(ctx, p, buf)
	br.b.record(stripe, err == nil)
	return err
}

// Ready reports whether the stripe's circuit could admit an attempt right
// now, without consuming a probe slot. True on a nil Breaker.
func (br *Breaker) Ready(stripe int) bool {
	if br == nil {
		return true
	}
	return br.b.ready(stripe)
}

// Trips returns the total circuit openings across all stripes (0 on nil).
func (br *Breaker) Trips() uint64 {
	if br == nil {
		return 0
	}
	return br.b.tripCount()
}

// OpenStripes returns how many stripes currently refuse traffic (0 on nil).
func (br *Breaker) OpenStripes() int {
	if br == nil {
		return 0
	}
	return br.b.openStripes()
}

// Allocate implements Backend.
func (br *Breaker) Allocate() (policy.PageID, error) { return br.inner.Allocate() }

// Deallocate implements Backend.
func (br *Breaker) Deallocate(p policy.PageID) error { return br.inner.Deallocate(p) }

// Flush implements Backend.
func (br *Breaker) Flush(ctx context.Context) error { return br.inner.Flush(ctx) }

// Stats implements Backend.
func (br *Breaker) Stats() Stats { return br.inner.Stats() }

// StripeOf implements Backend.
func (br *Breaker) StripeOf(p policy.PageID) int { return br.inner.StripeOf(p) }

// NumStripes implements Backend.
func (br *Breaker) NumStripes() int { return br.inner.NumStripes() }

// NumPages implements Backend.
func (br *Breaker) NumPages() int { return br.inner.NumPages() }

// Close implements Backend.
func (br *Breaker) Close() error { return br.inner.Close() }
