package storage

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/policy"
	"repro/internal/stats"
)

// This file implements deterministic fault injection as a Backend wrapper:
// a FaultPlan is a declarative list of rules deciding, per operation,
// whether the store fails it, and WithFaults arms a plan in front of any
// backend — the simulator and the durable file store alike. It exists so
// the buffer pool's error paths (failed miss reads, failed dirty-victim
// write-backs) can be exercised exactly and reproducibly instead of never.

// Op identifies a class of storage operations for fault matching.
type Op uint8

const (
	// OpRead matches Backend.Read.
	OpRead Op = 1 << iota
	// OpWrite matches Backend.Write.
	OpWrite
	// OpAllocate matches Backend.Allocate. It is deliberately outside
	// OpAny: allocation faults (a full device, most usefully injected as
	// storage.ErrNoSpace) must be opted into explicitly so page-transfer
	// storms keep their exact read/write ledgers.
	OpAllocate
)

// OpAny matches every page-transfer storage operation (reads and writes).
const OpAny = OpRead | OpWrite

// ErrInjectedFault is the error a faulted operation returns unless its rule
// carries a custom Err.
var ErrInjectedFault = errors.New("storage: injected fault")

// FaultRule describes one error-injection rule. The zero value of each
// field is the permissive default, so a rule lists only its constraints:
//
//	FaultRule{Op: OpWrite, Pages: []policy.PageID{7}}      // every write of page 7 fails
//	FaultRule{Op: OpRead, After: 10, Count: 3}             // reads 11..13 fail
//	FaultRule{Probability: 0.01}                           // ~1% of all I/O fails
type FaultRule struct {
	// Op selects the operation classes the rule applies to; zero means
	// OpAny.
	Op Op
	// Pages restricts the rule to the listed page ids; empty matches every
	// page.
	Pages []policy.PageID
	// After lets that many matching operations pass before the rule arms.
	After uint64
	// Count bounds how many faults the rule injects once armed; zero means
	// unlimited.
	Count uint64
	// Probability, when in (0, 1), faults each armed matching operation
	// with this probability, drawn from the plan's seeded generator; zero
	// (or anything ≥ 1) faults every one.
	Probability float64
	// Err is the error injected; nil selects ErrInjectedFault.
	Err error
}

// faultRule is a FaultRule plus its runtime matching state.
type faultRule struct {
	FaultRule
	pages    map[policy.PageID]struct{} // nil when the rule matches all pages
	seen     uint64                     // matching operations observed so far
	injected uint64                     // faults injected so far
}

// FaultPlan is a deterministic fault-injection schedule: rules are
// consulted in declaration order and the first one that fires decides the
// operation's fate. All randomness flows from one seeded generator, so a
// single-threaded operation sequence faults identically on every run;
// under concurrency the decision *stream* is still the seeded one, but its
// assignment to operations follows arrival order.
//
// A FaultPlan is safe for concurrent use. Arm it with Faulty.SetFaults.
type FaultPlan struct {
	mu    sync.Mutex
	rng   *stats.RNG
	rules []faultRule
}

// NewFaultPlan returns a plan with the given rules, drawing probabilistic
// decisions from a generator seeded with seed.
func NewFaultPlan(seed uint64, rules ...FaultRule) *FaultPlan {
	p := &FaultPlan{rng: stats.NewRNG(seed)}
	for _, r := range rules {
		fr := faultRule{FaultRule: r}
		if fr.Op == 0 {
			fr.Op = OpAny
		}
		if fr.Err == nil {
			fr.Err = ErrInjectedFault
		}
		if len(r.Pages) > 0 {
			fr.pages = make(map[policy.PageID]struct{}, len(r.Pages))
			for _, pg := range r.Pages {
				fr.pages[pg] = struct{}{}
			}
		}
		p.rules = append(p.rules, fr)
	}
	return p
}

// check runs one operation through the rules and returns the injected
// error, if any. An operation is charged against every rule in order until
// one fires. Safe on a nil plan.
func (p *FaultPlan) check(op Op, page policy.PageID) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.rules {
		r := &p.rules[i]
		if r.Op&op == 0 {
			continue
		}
		if r.pages != nil {
			if _, ok := r.pages[page]; !ok {
				continue
			}
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		if r.Count > 0 && r.injected >= r.Count {
			continue
		}
		if r.Probability > 0 && r.Probability < 1 && p.rng.Float64() >= r.Probability {
			continue
		}
		r.injected++
		return r.Err
	}
	return nil
}

// FaultCharger is optionally implemented by backends that price faulted
// operations: a failed I/O still cost device time (the arm still moved).
// The simulator implements it so charging a doomed operation runs its
// ServiceModel.Delay hook — tests can park a faulted read exactly like a
// successful one.
type FaultCharger interface {
	ChargeFault(p policy.PageID)
}

// Faulty is a Backend wrapper that injects deterministic faults from an
// armed FaultPlan. Faulted operations never reach the inner backend (so its
// Reads/Writes ledgers count only genuine transfers); the wrapper counts
// them in ReadFaults/WriteFaults and, when the inner backend implements
// FaultCharger, charges it for the wasted device time.
type Faulty struct {
	inner   Backend
	charger FaultCharger // nil when inner does not price faults
	plan    atomic.Pointer[FaultPlan]

	readFaults  atomic.Uint64
	writeFaults atomic.Uint64
}

// WithFaults wraps inner with a fault-injection stage (initially disarmed).
func WithFaults(inner Backend) *Faulty {
	f := &Faulty{inner: inner}
	if c, ok := inner.(FaultCharger); ok {
		f.charger = c
	}
	return f
}

// SetFaults arms (or, with nil, disarms) a fault-injection plan. It may be
// called at any time, including while operations are in flight; operations
// already past their fault check complete normally.
func (f *Faulty) SetFaults(p *FaultPlan) { f.plan.Store(p) }

// Inner returns the wrapped backend.
func (f *Faulty) Inner() Backend { return f.inner }

// Read implements Backend.
func (f *Faulty) Read(ctx context.Context, p policy.PageID, buf []byte) error {
	if ferr := f.plan.Load().check(OpRead, p); ferr != nil {
		f.readFaults.Add(1)
		if f.charger != nil {
			f.charger.ChargeFault(p)
		}
		return fmt.Errorf("read page %d: %w", p, ferr)
	}
	return f.inner.Read(ctx, p, buf)
}

// Write implements Backend.
func (f *Faulty) Write(ctx context.Context, p policy.PageID, buf []byte) error {
	if ferr := f.plan.Load().check(OpWrite, p); ferr != nil {
		f.writeFaults.Add(1)
		if f.charger != nil {
			f.charger.ChargeFault(p)
		}
		return fmt.Errorf("write page %d: %w", p, ferr)
	}
	return f.inner.Write(ctx, p, buf)
}

// Allocate implements Backend. Rules targeting OpAllocate fault it (the
// page id matched is -1: no page exists yet, so Pages-restricted rules
// never fire here); allocation faults are not counted in the read/write
// fault ledgers.
func (f *Faulty) Allocate() (policy.PageID, error) {
	if ferr := f.plan.Load().check(OpAllocate, -1); ferr != nil {
		return 0, fmt.Errorf("allocate page: %w", ferr)
	}
	return f.inner.Allocate()
}

// Deallocate implements Backend.
func (f *Faulty) Deallocate(p policy.PageID) error { return f.inner.Deallocate(p) }

// Flush implements Backend.
func (f *Faulty) Flush(ctx context.Context) error { return f.inner.Flush(ctx) }

// Stats implements Backend, merging the wrapper's fault counters into the
// inner backend's ledger.
func (f *Faulty) Stats() Stats {
	s := f.inner.Stats()
	s.ReadFaults += f.readFaults.Load()
	s.WriteFaults += f.writeFaults.Load()
	return s
}

// StripeOf implements Backend.
func (f *Faulty) StripeOf(p policy.PageID) int { return f.inner.StripeOf(p) }

// NumStripes implements Backend.
func (f *Faulty) NumStripes() int { return f.inner.NumStripes() }

// NumPages implements Backend.
func (f *Faulty) NumPages() int { return f.inner.NumPages() }

// Close implements Backend.
func (f *Faulty) Close() error { return f.inner.Close() }
