package storage

import (
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for driving the breaker's cooldown
// without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func newTestBreaker(cfg BreakerConfig, clk *fakeClock) *breaker {
	return newBreaker(cfg, 4, clk.now)
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(BreakerConfig{Threshold: 3, Cooldown: 50 * time.Millisecond, Probes: 2}, clk)

	for i := 0; i < 2; i++ {
		if !b.allow(0) {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.record(0, false)
	}
	if b.openStripes() != 0 {
		t.Fatal("breaker opened below threshold")
	}
	if !b.allow(0) {
		t.Fatal("closed breaker refused the threshold attempt")
	}
	b.record(0, false) // third consecutive failure: trip

	if b.openStripes() != 1 {
		t.Fatal("breaker did not open at threshold")
	}
	if b.tripCount() != 1 {
		t.Fatalf("tripCount = %d, want 1", b.tripCount())
	}
	if b.allow(0) || b.ready(0) {
		t.Fatal("open breaker admitted traffic before cooldown")
	}
	// Other stripes are independent.
	if !b.allow(1) {
		t.Fatal("stripe 1 tripped by stripe 0's failures")
	}
	b.record(1, true)
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(BreakerConfig{Threshold: 2}, clk)
	// failure, success, failure, success, ... never reaches 2 consecutive.
	for i := 0; i < 10; i++ {
		if !b.allow(0) {
			t.Fatalf("breaker refused attempt %d", i)
		}
		b.record(0, i%2 == 0)
	}
	if b.tripCount() != 0 {
		t.Fatal("interleaved failures tripped the breaker")
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(BreakerConfig{Threshold: 1, Cooldown: 50 * time.Millisecond, Probes: 2}, clk)
	b.allow(0)
	b.record(0, false) // trip

	clk.advance(49 * time.Millisecond)
	if b.allow(0) {
		t.Fatal("open breaker admitted a probe before cooldown elapsed")
	}
	clk.advance(2 * time.Millisecond)
	if !b.ready(0) {
		t.Fatal("ready = false after cooldown")
	}
	// First probe: admitted, and it holds the stripe's single probe slot.
	if !b.allow(0) {
		t.Fatal("half-open breaker refused the first probe")
	}
	if b.allow(0) || b.ready(0) {
		t.Fatal("second concurrent probe admitted while one is in flight")
	}
	b.record(0, true)
	// One success is not enough at Probes=2; still half-open, next probe ok.
	if !b.allow(0) {
		t.Fatal("half-open breaker refused the second probe")
	}
	b.record(0, true) // closes

	// Closed again: concurrent admissions flow freely.
	if !b.allow(0) || !b.allow(0) {
		t.Fatal("closed breaker serialising traffic like half-open")
	}
	b.record(0, true)
	b.record(0, true)
	if b.tripCount() != 1 {
		t.Fatalf("tripCount = %d, want 1", b.tripCount())
	}
}

func TestBreakerReopensOnProbeFailure(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(BreakerConfig{Threshold: 1, Cooldown: 50 * time.Millisecond, Probes: 1}, clk)
	b.allow(0)
	b.record(0, false) // trip 1

	clk.advance(51 * time.Millisecond)
	if !b.allow(0) {
		t.Fatal("probe refused after cooldown")
	}
	b.record(0, false) // probe fails: trip 2, cooldown restarts from now

	if b.tripCount() != 2 {
		t.Fatalf("tripCount = %d, want 2", b.tripCount())
	}
	clk.advance(49 * time.Millisecond)
	if b.allow(0) {
		t.Fatal("reopened breaker did not restart its cooldown")
	}
	clk.advance(2 * time.Millisecond)
	if !b.allow(0) {
		t.Fatal("probe refused after the restarted cooldown")
	}
	b.record(0, true) // Probes=1: closes
	if b.openStripes() != 0 {
		t.Fatal("breaker still open after a successful probe at Probes=1")
	}
}

// TestBreakerStragglerRecordWhileOpen: an attempt admitted just before the
// trip may report its outcome after the circuit opened; the cooldown clock
// must stand.
func TestBreakerStragglerRecordWhileOpen(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(BreakerConfig{Threshold: 1, Cooldown: 50 * time.Millisecond}, clk)
	b.allow(0)
	b.allow(0) // two concurrent attempts admitted while closed
	b.record(0, false)
	clk.advance(25 * time.Millisecond)
	b.record(0, true) // straggler success must not close or re-arm anything
	if b.openStripes() != 1 {
		t.Fatal("straggler record closed an open breaker")
	}
	clk.advance(24 * time.Millisecond)
	if b.allow(0) {
		t.Fatal("straggler record restarted the cooldown")
	}
}

func TestBreakerDisabled(t *testing.T) {
	if b := newBreaker(BreakerConfig{}, 4, time.Now); b != nil {
		t.Fatal("zero Threshold did not disable the breaker")
	}
	var b *breaker // nil breaker: everything admitted, nothing recorded
	if !b.allow(0) || !b.ready(0) {
		t.Fatal("nil breaker refused traffic")
	}
	b.record(0, false)
	if b.tripCount() != 0 || b.openStripes() != 0 {
		t.Fatal("nil breaker reports state")
	}
}

// TestBreakerWrapperDisabled: WithBreaker with a non-positive threshold
// returns a typed nil whose query methods stay callable.
func TestBreakerWrapperDisabled(t *testing.T) {
	var br *Breaker
	if !br.Ready(0) {
		t.Error("nil Breaker not ready")
	}
	if br.Trips() != 0 || br.OpenStripes() != 0 {
		t.Error("nil Breaker reports state")
	}
}
