package storage

import "errors"

// This file classifies storage errors as transient (worth retrying: the
// same operation may succeed if reissued) or permanent (retrying is wasted
// time: the page does not exist, the buffer is malformed, the device
// rejected the request for a structural reason). The buffer pool's retry
// and circuit-breaker machinery keys off this classification.

// ErrNoSpace reports that the backing device is out of space. It is
// permanent under IsTransient: reissuing the identical allocation or append
// cannot succeed until an operator frees space, so callers must fail fast
// (and let the circuit breaker shed load) instead of spinning the retry
// ladder. The file backend maps ENOSPC from page-file extension and WAL
// appends onto it; tests inject it with a FaultRule.
var ErrNoSpace = errors.New("storage: device out of space")

// TransientMarker is implemented by errors that declare their own
// retryability. MarkTransient wraps an arbitrary error with it.
type TransientMarker interface {
	// Transient reports whether the operation that produced the error may
	// succeed if simply retried.
	Transient() bool
}

type transientError struct{ err error }

func (e *transientError) Error() string   { return e.err.Error() }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Transient() bool { return true }

// MarkTransient wraps err so IsTransient reports true for it (and for any
// error wrapping it). A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is worth retrying. An error is transient
// when it is (or wraps) ErrInjectedFault — injected faults model the
// environmental failures (cable hiccups, controller timeouts) that clear on
// their own — or when an error in its chain implements TransientMarker and
// declares itself transient. Everything else, ErrPageNotAllocated,
// ErrUnavailable and malformed-buffer errors included, is permanent:
// reissuing the identical request cannot change the outcome.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var m TransientMarker
	if errors.As(err, &m) {
		return m.Transient()
	}
	return errors.Is(err, ErrInjectedFault)
}
