#!/bin/sh
# End-to-end smoke test of the network page service: build lrukd and
# lrukload, boot the daemon on a random port, drive a short load burst,
# require a non-zero pool hit ratio from STATS, then SIGTERM the daemon
# and require a clean (exit 0, leak-checked) shutdown.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
daemon_pid=""
cleanup() {
    if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -KILL "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "== build lrukd + lrukload"
go build -o "$tmp/lrukd" ./cmd/lrukd
go build -o "$tmp/lrukload" ./cmd/lrukload

echo "== start lrukd on a random port"
"$tmp/lrukd" -addr 127.0.0.1:0 -customers 2000 -frames 128 >"$tmp/lrukd.log" 2>&1 &
daemon_pid=$!

# Wait for the serving line and parse the bound address from it.
addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/^lrukd: serving on \([^ ]*\).*/\1/p' "$tmp/lrukd.log")
    [ -n "$addr" ] && break
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        echo "lrukd died during startup:"
        cat "$tmp/lrukd.log"
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "lrukd never printed its serving line:"
    cat "$tmp/lrukd.log"
    exit 1
fi
echo "   lrukd at $addr (pid $daemon_pid)"

echo "== load burst"
# The key space fits in RAM after the burst warms it, so the hit-ratio
# gate proves real cache traffic flowed through the wire protocol.
"$tmp/lrukload" -addr "$addr" -clients 4 -duration 1s -keys 2000 -min-hit-ratio 0.01

echo "== graceful shutdown (SIGTERM)"
kill -TERM "$daemon_pid"
status=0
wait "$daemon_pid" || status=$?
daemon_pid=""
if [ "$status" -ne 0 ]; then
    echo "lrukd exited $status:"
    cat "$tmp/lrukd.log"
    exit 1
fi
if ! grep -q "lrukd: clean shutdown" "$tmp/lrukd.log"; then
    echo "lrukd exited 0 but never declared a clean shutdown:"
    cat "$tmp/lrukd.log"
    exit 1
fi
echo "serve-smoke OK"
