#!/bin/sh
# End-to-end data-integrity smoke test: boot lrukd on a durable data dir,
# drive a ledger-recorded update load, SIGKILL the daemon, flip bytes in
# several WAL-covered pages of the stopped store (simulated bit-rot), then
# restart and require that
#   - recovery replays the WAL over the damaged slots (trailers restored),
#   - every acknowledged update still verifies against the ledger,
#   - the integrity metric families are exposed and the WAL gauge is live,
#   - the daemon drains cleanly with the background scrubber armed.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
daemon_pid=""
cleanup() {
    if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -KILL "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

# wait_addrs <logfile>: block until both serving lines appear; sets $addr
# and $obs_addr.
wait_addrs() {
    _log=$1
    addr=""
    obs_addr=""
    _i=0
    while [ $_i -lt 150 ]; do
        addr=$(sed -n 's/^lrukd: serving on \([^ ]*\).*/\1/p' "$_log")
        obs_addr=$(sed -n 's/^lrukd: observability on \([^ ]*\).*/\1/p' "$_log")
        [ -n "$addr" ] && [ -n "$obs_addr" ] && break
        if ! kill -0 "$daemon_pid" 2>/dev/null; then
            echo "lrukd died during startup:" >&2
            cat "$_log" >&2
            exit 1
        fi
        sleep 0.1
        _i=$((_i + 1))
    done
    if [ -z "$addr" ] || [ -z "$obs_addr" ]; then
        echo "lrukd never printed its serving lines:" >&2
        cat "$_log" >&2
        exit 1
    fi
}

echo "== build lrukd + lrukload"
go build -o "$tmp/lrukd" ./cmd/lrukd
go build -o "$tmp/lrukload" ./cmd/lrukload

echo "== start lrukd on a durable data dir"
"$tmp/lrukd" -addr 127.0.0.1:0 -obs-addr 127.0.0.1:0 -backend=file \
    -data-dir "$tmp/data" -customers 2000 -frames 128 \
    >"$tmp/lrukd1.log" 2>&1 &
daemon_pid=$!
wait_addrs "$tmp/lrukd1.log"
echo "   lrukd at $addr (pid $daemon_pid, data $tmp/data)"

echo "== ledger-recorded update load"
"$tmp/lrukload" -addr "$addr" -clients 4 -duration 30s -keys 2000 \
    -ledger "$tmp/ledger.json" >"$tmp/load.log" 2>&1 &
load_pid=$!
sleep 2

echo "== kill -9, then corrupt the stopped store"
kill -KILL "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
if ! wait "$load_pid"; then
    echo "load failed (no acknowledged updates?):"
    cat "$tmp/load.log"
    exit 1
fi
"$tmp/lrukload" -corrupt-pages 3 -data-dir "$tmp/data" -seed 11

echo "== restart: recovery must replay the WAL over the damaged slots"
"$tmp/lrukd" -addr 127.0.0.1:0 -obs-addr 127.0.0.1:0 -backend=file \
    -data-dir "$tmp/data" -customers 2000 -frames 128 \
    -scrub-interval 50ms >"$tmp/lrukd2.log" 2>&1 &
daemon_pid=$!
wait_addrs "$tmp/lrukd2.log"
if ! grep -q '^lrukd: recovered' "$tmp/lrukd2.log"; then
    echo "restarted lrukd did not report a recovery:"
    cat "$tmp/lrukd2.log"
    exit 1
fi
grep '^lrukd: recovered' "$tmp/lrukd2.log"
echo "   lrukd back at $addr (pid $daemon_pid, scrubber armed)"

echo "== verify acknowledged updates against the ledger"
"$tmp/lrukload" -addr "$addr" -ledger "$tmp/ledger.json" -verify

echo "== integrity metric families exposed"
go run ./scripts/internal/httpget "http://$obs_addr/metrics" >"$tmp/metrics"
for fam in lruk_corrupt_detected_total lruk_repair_success_total \
    lruk_repair_failed_total lruk_scrub_pages_total lruk_disk_wal_bytes; do
    if ! grep -q "^$fam" "$tmp/metrics"; then
        echo "/metrics missing family $fam:"
        grep '^lruk' "$tmp/metrics" | cut -d'{' -f1 | sort -u
        exit 1
    fi
done
# Quarantine must be empty: the damage was WAL-covered, so recovery healed
# everything before the pool ever saw it.
if ! grep -q '^lruk_repair_failed_total 0$' "$tmp/metrics"; then
    echo "repairs failed on WAL-covered damage:"
    grep '^lruk_\(repair\|corrupt\)' "$tmp/metrics"
    exit 1
fi

echo "== graceful shutdown (SIGTERM) with the scrubber running"
kill -TERM "$daemon_pid"
status=0
wait "$daemon_pid" || status=$?
daemon_pid=""
if [ "$status" -ne 0 ]; then
    echo "lrukd exited $status:"
    cat "$tmp/lrukd2.log"
    exit 1
fi
if ! grep -q "lrukd: clean shutdown" "$tmp/lrukd2.log"; then
    echo "lrukd exited 0 but never declared a clean shutdown:"
    cat "$tmp/lrukd2.log"
    exit 1
fi
echo "corrupt-smoke OK"
