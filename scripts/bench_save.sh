#!/bin/sh
# Run the storage backend benchmarks (sim vs durable file store: write,
# group-committed parallel write, read, checkpoint, recovery replay) and
# save the results as BENCH_storage.json in the repo root, so the cost of
# durability is tracked across changes.
set -eu
cd "$(dirname "$0")/.."

out=BENCH_storage.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT INT TERM

echo "== storage benchmarks (this takes a minute)"
go test -run '^$' -bench . -benchtime 200x -count 1 \
    ./internal/storage/file/ | tee "$raw"

# Convert `go test -bench` text output into a stable JSON document:
# one object per benchmark with iterations, ns/op and (where reported)
# MB/s. Everything else (goos, cpu line, PASS) goes to metadata.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { n = 0 }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; iters = $2; ns = $3
    mbs = ""
    for (i = 4; i <= NF; i++) if ($(i) == "MB/s") mbs = $(i - 1)
    line = sprintf("  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
    if (mbs != "") line = line sprintf(", \"mb_per_s\": %s", mbs)
    line = line "}"
    bench[n++] = line
}
END {
    printf "{\n"
    printf " \"date\": \"%s\",\n", date
    printf " \"goos\": \"%s\",\n", goos
    printf " \"goarch\": \"%s\",\n", goarch
    printf " \"cpu\": \"%s\",\n", cpu
    printf " \"benchmarks\": [\n"
    for (i = 0; i < n; i++) printf "%s%s\n", bench[i], (i < n - 1 ? "," : "")
    printf " ]\n}\n"
}' "$raw" >"$out"

echo "== wrote $out"
