#!/bin/sh
# Run the tracked benchmark suites and snapshot their results as JSON in
# the repo root, so performance is tracked across changes:
#
#   BENCH_storage.json — storage backends (sim vs durable file store:
#       write, group-committed parallel write, read, checkpoint, recovery
#       replay), the cost of durability.
#   BENCH_hotpath.json — the buffer pool's resident-hit path (serial vs
#       sharded vs batched replacer, 1/4/8/16 goroutines, both backends),
#       the §2.1 "negligible per-reference cost" trajectory.
#
# Each suite keeps its latest snapshot at the stable name above, appends a
# dated copy under BENCH_history/, and — when a previous snapshot existed —
# prints a per-benchmark ns/op diff, flagging regressions beyond the noise
# threshold.
set -eu
cd "$(dirname "$0")/.."

mkdir -p BENCH_history
stamp=$(date -u +%Y%m%dT%H%M%SZ)
raw=$(mktemp)
prev=$(mktemp)
trap 'rm -f "$raw" "$prev"' EXIT INT TERM

# to_json <raw-bench-output> <out.json>: convert `go test -bench` text
# output into a stable JSON document — one object per benchmark with
# iterations, ns/op and (where reported) MB/s; goos/cpu lines go to
# metadata.
to_json() {
    awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
    BEGIN { n = 0 }
    /^goos:/   { goos = $2 }
    /^goarch:/ { goarch = $2 }
    /^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
    /^Benchmark/ {
        name = $1; iters = $2; ns = $3
        mbs = ""
        for (i = 4; i <= NF; i++) if ($(i) == "MB/s") mbs = $(i - 1)
        line = sprintf("  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
        if (mbs != "") line = line sprintf(", \"mb_per_s\": %s", mbs)
        line = line "}"
        bench[n++] = line
    }
    END {
        printf "{\n"
        printf " \"date\": \"%s\",\n", date
        printf " \"goos\": \"%s\",\n", goos
        printf " \"goarch\": \"%s\",\n", goarch
        printf " \"cpu\": \"%s\",\n", cpu
        printf " \"benchmarks\": [\n"
        for (i = 0; i < n; i++) printf "%s%s\n", bench[i], (i < n - 1 ? "," : "")
        printf " ]\n}\n"
    }' "$1" >"$2"
}

# diff_json <prev.json> <new.json>: per-benchmark ns/op comparison over the
# stable JSON format written above. Regressions beyond 25% (generous: the
# CI container is a single shared CPU) are flagged; the script still exits
# 0 — the enforced gate is `make bench-hit`, this diff is for the reader.
diff_json() {
    awk '
    function extract(line,   name, ns) {
        if (line !~ /"name"/) return
        name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
        ns = line; sub(/.*"ns_per_op": /, "", ns); sub(/[,}].*/, "", ns)
        if (FILENAME == ARGV[1]) old[name] = ns
        else { new[name] = ns; if (!(name in seen)) { order[n++] = name; seen[name] = 1 } }
    }
    { extract($0) }
    END {
        printf "  %-64s %12s %12s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta"
        regressions = 0
        for (i = 0; i < n; i++) {
            name = order[i]
            if (!(name in old)) { printf "  %-64s %12s %12s %8s\n", name, "-", new[name], "new"; continue }
            delta = (new[name] - old[name]) / old[name] * 100
            flag = ""
            if (delta > 25) { flag = "  << REGRESSION"; regressions++ }
            printf "  %-64s %12s %12s %+7.1f%%%s\n", name, old[name], new[name], delta, flag
        }
        for (name in old) if (!(name in new)) printf "  %-64s %12s %12s %8s\n", name, old[name], "-", "gone"
        if (regressions > 0) printf "  %d benchmark(s) regressed beyond the 25%% noise threshold\n", regressions
        else printf "  no regressions beyond the 25%% noise threshold\n"
    }' "$1" "$2"
}

# save <label> <out.json> <bench-cmd...>: run the suite, snapshot it, file
# the dated history copy, and diff against the previous snapshot.
save() {
    label=$1; out=$2; shift 2
    echo "== $label benchmarks (this takes a minute)"
    "$@" | tee "$raw"
    had_prev=0
    if [ -f "$out" ]; then
        cp "$out" "$prev"
        had_prev=1
    fi
    to_json "$raw" "$out"
    hist="BENCH_history/$(basename "$out" .json)_${stamp}.json"
    cp "$out" "$hist"
    echo "== wrote $out (history: $hist)"
    if [ "$had_prev" = 1 ]; then
        echo "== $label ns/op vs previous snapshot:"
        diff_json "$prev" "$out"
    else
        echo "== no previous $out; baseline recorded"
    fi
}

save storage BENCH_storage.json \
    go test -run '^$' -bench . -benchtime 200x -count 1 ./internal/storage/file/

save hot-path BENCH_hotpath.json \
    go test -run '^$' -bench BenchmarkPoolHit -benchtime 1s -count 1 ./internal/bufferpool/
