#!/bin/sh
# Kill-and-restart durability test of the file-backed storage backend:
# boot lrukd on a durable data directory, drive an updates-only crash-test
# load that records every acknowledged update in a client-side ledger,
# SIGKILL the daemon mid-run (no drain, no checkpoint), restart it on the
# same directory, and verify against the ledger that every acknowledged
# update survived WAL recovery.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
daemon_pid=""
cleanup() {
    if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -KILL "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

# wait_addr <logfile>: block until the serving line appears, echo the
# bound address.
wait_addr() {
    _log=$1
    _addr=""
    _i=0
    while [ $_i -lt 150 ]; do
        _addr=$(sed -n 's/^lrukd: serving on \([^ ]*\).*/\1/p' "$_log")
        [ -n "$_addr" ] && break
        if ! kill -0 "$daemon_pid" 2>/dev/null; then
            echo "lrukd died during startup:" >&2
            cat "$_log" >&2
            exit 1
        fi
        sleep 0.1
        _i=$((_i + 1))
    done
    if [ -z "$_addr" ]; then
        echo "lrukd never printed its serving line:" >&2
        cat "$_log" >&2
        exit 1
    fi
    echo "$_addr"
}

echo "== build lrukd + lrukload"
go build -o "$tmp/lrukd" ./cmd/lrukd
go build -o "$tmp/lrukload" ./cmd/lrukload

echo "== start lrukd on a durable data dir"
"$tmp/lrukd" -addr 127.0.0.1:0 -backend=file -data-dir "$tmp/data" \
    -customers 2000 -frames 128 >"$tmp/lrukd1.log" 2>&1 &
daemon_pid=$!
addr=$(wait_addr "$tmp/lrukd1.log")
echo "   lrukd at $addr (pid $daemon_pid, data $tmp/data)"

echo "== crash-test load (ledger-recorded updates)"
# Long duration: the load is meant to still be running when the SIGKILL
# lands. The clients stop on their own once the server dies, leaving at
# most one unacknowledged in-flight update per key in the ledger.
"$tmp/lrukload" -addr "$addr" -clients 4 -duration 30s -keys 2000 \
    -ledger "$tmp/ledger.json" >"$tmp/load.log" 2>&1 &
load_pid=$!
sleep 2

echo "== kill -9 mid-load"
kill -KILL "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
if ! wait "$load_pid"; then
    echo "crash-test load failed (no acknowledged updates?):"
    cat "$tmp/load.log"
    exit 1
fi
grep '^lrukload: ledger' "$tmp/load.log" || true

echo "== restart lrukd on the same data dir"
"$tmp/lrukd" -addr 127.0.0.1:0 -backend=file -data-dir "$tmp/data" \
    -customers 2000 -frames 128 >"$tmp/lrukd2.log" 2>&1 &
daemon_pid=$!
addr=$(wait_addr "$tmp/lrukd2.log")
if ! grep -q '^lrukd: recovered' "$tmp/lrukd2.log"; then
    echo "restarted lrukd did not report a recovery:"
    cat "$tmp/lrukd2.log"
    exit 1
fi
grep '^lrukd: recovered' "$tmp/lrukd2.log"
echo "   lrukd back at $addr (pid $daemon_pid)"

echo "== verify acknowledged updates against the ledger"
"$tmp/lrukload" -addr "$addr" -ledger "$tmp/ledger.json" -verify

echo "== graceful shutdown (SIGTERM)"
kill -TERM "$daemon_pid"
status=0
wait "$daemon_pid" || status=$?
daemon_pid=""
if [ "$status" -ne 0 ]; then
    echo "lrukd exited $status:"
    cat "$tmp/lrukd2.log"
    exit 1
fi
if ! grep -q "lrukd: clean shutdown" "$tmp/lrukd2.log"; then
    echo "lrukd exited 0 but never declared a clean shutdown:"
    cat "$tmp/lrukd2.log"
    exit 1
fi
echo "crash-smoke OK"
