// Command httpget is a minimal HTTP GET for the smoke scripts: it fetches
// one URL and writes the body to stdout, exiting non-zero on any error or
// non-200 status. It exists so the scripts need nothing beyond the go
// toolchain — no curl, no wget.
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: httpget <url>")
		os.Exit(2)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "httpget:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "httpget: %s: %s\n", os.Args[1], resp.Status)
		os.Exit(1)
	}
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		fmt.Fprintln(os.Stderr, "httpget:", err)
		os.Exit(1)
	}
}
