#!/bin/sh
# Full pre-merge gate: build, vet, plain tests, then the suite again under
# the race detector. Equivalent to `make check`.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi
echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== go test ./..."
go test -timeout 300s ./...
echo "== go test -race ./..."
go test -race -timeout 600s ./...
echo "== serve-smoke"
sh scripts/serve_smoke.sh
echo "== obs-smoke"
sh scripts/obs_smoke.sh
echo "== crash-smoke"
sh scripts/crash_smoke.sh
echo "OK"
