#!/bin/sh
# End-to-end smoke test of the multi-node page service: boot a 3-node
# cluster as three independent lrukd processes, drive a ledger-recorded
# update load plus a skew-gated mixed load through the ring-aware client,
# rebalance one node away with the crash-safe handoff and SIGTERM it,
# verify every acknowledged update survived the move, SIGKILL a second
# node under live load and require the load run to absorb it, then drain
# the survivor cleanly.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid0=""
pid1=""
pid2=""
cleanup() {
    for p in "$pid0" "$pid1" "$pid2"; do
        if [ -n "$p" ] && kill -0 "$p" 2>/dev/null; then
            kill -KILL "$p" 2>/dev/null || true
        fi
    done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "== build lrukd + lrukload + lrukcluster"
go build -o "$tmp/lrukd" ./cmd/lrukd
go build -o "$tmp/lrukload" ./cmd/lrukload
go build -o "$tmp/lrukcluster" ./cmd/lrukcluster

# The cluster spec must name real ports before any node boots (every
# member bootstraps the same epoch-1 view from it), so ports are fixed up
# front: a PID-derived base keeps concurrent runs apart.
base=$((20000 + $$ % 20000))
p0=$base
p1=$((base + 1))
p2=$((base + 2))
spec3="n0=127.0.0.1:$p0,n1=127.0.0.1:$p1,n2=127.0.0.1:$p2"
spec2="n0=127.0.0.1:$p0,n1=127.0.0.1:$p1"
keys=2000

echo "== start 3 lrukd nodes on $spec3"
"$tmp/lrukd" -addr "127.0.0.1:$p0" -node-id n0 -cluster "$spec3" \
    -customers $keys -frames 128 >"$tmp/n0.log" 2>&1 &
pid0=$!
"$tmp/lrukd" -addr "127.0.0.1:$p1" -node-id n1 -cluster "$spec3" \
    -customers $keys -frames 128 >"$tmp/n1.log" 2>&1 &
pid1=$!
"$tmp/lrukd" -addr "127.0.0.1:$p2" -node-id n2 -cluster "$spec3" \
    -customers $keys -frames 128 >"$tmp/n2.log" 2>&1 &
pid2=$!

for n in 0 1 2; do
    eval "pid=\$pid$n"
    i=0
    while ! grep -q "lrukd: serving on " "$tmp/n$n.log" 2>/dev/null; do
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "node n$n died during startup:"
            cat "$tmp/n$n.log"
            exit 1
        fi
        i=$((i + 1))
        if [ $i -gt 100 ]; then
            echo "node n$n never printed its serving line:"
            cat "$tmp/n$n.log"
            exit 1
        fi
        sleep 0.1
    done
    if ! grep -q "node=n$n" "$tmp/n$n.log"; then
        echo "node n$n serving line lacks its node id:"
        cat "$tmp/n$n.log"
        exit 1
    fi
done
echo "   n0=$pid0 n1=$pid1 n2=$pid2"

echo "== cluster view"
"$tmp/lrukcluster" view -cluster "$spec3" | tee "$tmp/view1.log"
grep -q "epoch=1" "$tmp/view1.log"

echo "== read load with skew and hit-ratio gates"
# Ring placement over this key space is deterministic: max/min ownership
# share is ~1.2, so 2.5 gates real imbalance without flaking. Reads only:
# the ledger verify below asserts untouched keys still hold the loader's
# zero filler, so the ledger load must be the only writer until then.
"$tmp/lrukload" -cluster "$spec3" -clients 4 -duration 1s -keys $keys \
    -get 99 -update 0 -scan 1 -max-skew 2.5 -min-hit-ratio 0.01

echo "== ledger load through the ring-aware client"
# Updates land on their ring owners; the ledger records each key's last
# acknowledged fill so the post-rebalance verify below can prove the
# handoff moved every acknowledged byte. Nothing may write between this
# load and the verify, or the ledger's claims go stale.
"$tmp/lrukload" -cluster "$spec3" -ledger "$tmp/led.json" \
    -clients 4 -duration 1s -keys $keys

echo "== rebalance n2 out of the cluster"
"$tmp/lrukcluster" remove -cluster "$spec3" -node n2 | tee "$tmp/remove.log"
grep -q "remove complete" "$tmp/remove.log"
"$tmp/lrukcluster" view -cluster "$spec2" | tee "$tmp/view2.log"
grep -q "epoch=2" "$tmp/view2.log"

echo "== graceful shutdown of the removed node (SIGTERM n2)"
kill -TERM "$pid2"
status=0
wait "$pid2" || status=$?
pid2=""
if [ "$status" -ne 0 ]; then
    echo "n2 exited $status:"
    cat "$tmp/n2.log"
    exit 1
fi
if ! grep -q "lrukd: clean shutdown" "$tmp/n2.log"; then
    echo "n2 exited 0 but never declared a clean shutdown:"
    cat "$tmp/n2.log"
    exit 1
fi

echo "== verify the ledger against the shrunk cluster"
# Keys that n2 owned were copied to the survivors before it flipped to
# shedding; every acknowledged update must still be readable.
"$tmp/lrukload" -cluster "$spec2" -ledger "$tmp/led.json" -verify

echo "== SIGKILL n1 under live load"
# A cluster-mode load run counts transport errors instead of dying with
# them: killing a member mid-burst must still end in exit 0 with work done.
"$tmp/lrukload" -cluster "$spec2" -clients 4 -duration 3s -keys $keys \
    >"$tmp/killload.log" 2>&1 &
load_pid=$!
sleep 0.7
kill -KILL "$pid1"
wait "$pid1" 2>/dev/null || true
pid1=""
status=0
wait "$load_pid" || status=$?
if [ "$status" -ne 0 ]; then
    echo "load run across the node kill exited $status:"
    cat "$tmp/killload.log"
    exit 1
fi
if ! grep -q "lrukload: ops=" "$tmp/killload.log" || grep -q "lrukload: ops=0 " "$tmp/killload.log"; then
    echo "load run across the node kill did no work:"
    cat "$tmp/killload.log"
    exit 1
fi

echo "== graceful shutdown of the survivor (SIGTERM n0)"
kill -TERM "$pid0"
status=0
wait "$pid0" || status=$?
pid0=""
if [ "$status" -ne 0 ]; then
    echo "n0 exited $status:"
    cat "$tmp/n0.log"
    exit 1
fi
if ! grep -q "lrukd: clean shutdown" "$tmp/n0.log"; then
    echo "n0 exited 0 but never declared a clean shutdown:"
    cat "$tmp/n0.log"
    exit 1
fi
echo "cluster-smoke OK"
