#!/bin/sh
# End-to-end smoke test of distributed request tracing: boot a 3-node
# cluster with span rings and obs listeners armed, gate startup on
# /healthz, drive a traced load, reassemble the printed slowest trace
# across every node's /spans ring with `lrukcluster trace`, check the
# /metrics histograms carry trace-id exemplars, run a traced rebalance
# and reassemble the handoff's trace too, then drain cleanly.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid0=""
pid1=""
pid2=""
cleanup() {
    for p in "$pid0" "$pid1" "$pid2"; do
        if [ -n "$p" ] && kill -0 "$p" 2>/dev/null; then
            kill -KILL "$p" 2>/dev/null || true
        fi
    done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "== build lrukd + lrukload + lrukcluster"
go build -o "$tmp/lrukd" ./cmd/lrukd
go build -o "$tmp/lrukload" ./cmd/lrukload
go build -o "$tmp/lrukcluster" ./cmd/lrukcluster

# Fixed ports up front (every member bootstraps the same epoch-1 view
# from the spec); a PID-derived base keeps concurrent runs apart. Each
# node gets a second port for its obs listener.
base=$((20000 + $$ % 20000))
p0=$base
p1=$((base + 1))
p2=$((base + 2))
o0=$((base + 3))
o1=$((base + 4))
o2=$((base + 5))
spec3="n0=127.0.0.1:$p0,n1=127.0.0.1:$p1,n2=127.0.0.1:$p2"
spec2="n0=127.0.0.1:$p0,n1=127.0.0.1:$p1"
obs3="n0=127.0.0.1:$o0,n1=127.0.0.1:$o1,n2=127.0.0.1:$o2"
obs2="n0=127.0.0.1:$o0,n1=127.0.0.1:$o1"
keys=2000

echo "== start 3 traced lrukd nodes on $spec3"
for n in 0 1 2; do
    eval "p=\$p$n"
    eval "o=\$o$n"
    # The ring must outlive the run: every span of the load's slowest
    # trace has to still be resident when the assembler asks, so the ring
    # is sized well above the run's expected span volume. A small frame
    # count forces real misses, giving the waterfall disk spans.
    "$tmp/lrukd" -addr "127.0.0.1:$p" -node-id "n$n" -cluster "$spec3" \
        -customers $keys -frames 128 \
        -obs-addr "127.0.0.1:$o" -trace-spans 16384 -trace-sample 1 \
        -trace-slow 250ms >"$tmp/n$n.log" 2>&1 &
    eval "pid$n=\$!"
done

echo "== wait for readiness via /healthz"
for n in 0 1 2; do
    eval "pid=\$pid$n"
    eval "o=\$o$n"
    i=0
    until curl -fsS "http://127.0.0.1:$o/healthz" >"$tmp/health$n.json" 2>/dev/null; do
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "node n$n died during startup:"
            cat "$tmp/n$n.log"
            exit 1
        fi
        i=$((i + 1))
        if [ $i -gt 100 ]; then
            echo "node n$n never turned /healthz ready:"
            cat "$tmp/n$n.log"
            exit 1
        fi
        sleep 0.1
    done
    grep -q '"serving":true' "$tmp/health$n.json"
    grep -q "\"node\":\"n$n\"" "$tmp/health$n.json"
done
echo "   n0=$pid0 n1=$pid1 n2=$pid2"

echo "== traced load through the ring-aware client"
# Scans stay out of the mix and the trace fraction stays low on purpose:
# a traced scan sprays thousands of spans and a high fraction churns the
# rings, either of which can overwrite the slowest trace's spans before
# the assembler reads them. ~2% of ~15k ops is a few thousand spans
# total, far under the per-node ring capacity.
"$tmp/lrukload" -cluster "$spec3" -clients 4 -duration 2s -keys $keys \
    -get 95 -update 5 -scan 0 -trace-sample 0.02 | tee "$tmp/load.log"
trace=$(sed -n 's/^lrukload: slowest trace=\([0-9a-f]\{16\}\) .*/\1/p' "$tmp/load.log")
if [ -z "$trace" ]; then
    echo "load run printed no slowest-trace line"
    exit 1
fi

echo "== reassemble trace $trace across the cluster"
"$tmp/lrukcluster" trace -obs "$obs3" "$trace" | tee "$tmp/trace.log"
summary=$(grep "lrukcluster: trace $trace " "$tmp/trace.log")
case "$summary" in
*" nest_violations=0") ;;
*)
    echo "trace summary reports nest violations: $summary"
    exit 1
    ;;
esac
case "$summary" in
*" spans=0 "*)
    echo "trace reassembled with no spans: $summary"
    exit 1
    ;;
esac
grep -q "\[n.\] request" "$tmp/trace.log"
grep -q "queue_wait" "$tmp/trace.log"

echo "== /metrics exemplars link latency buckets to trace ids"
found=0
for n in 0 1 2; do
    eval "o=\$o$n"
    if curl -fsS "http://127.0.0.1:$o/metrics" | grep -q "_exemplar{.*trace_id=\"[0-9a-f]\{16\}\""; then
        found=1
    fi
done
if [ "$found" -ne 1 ]; then
    echo "no node's /metrics carried a trace-id exemplar"
    exit 1
fi

echo "== traced rebalance: remove n2"
"$tmp/lrukcluster" remove -cluster "$spec3" -node n2 | tee "$tmp/remove.log"
grep -q "remove complete" "$tmp/remove.log"
rbtrace=$(sed -n 's/^lrukcluster: rebalance trace=\([0-9a-f]\{16\}\).*/\1/p' "$tmp/remove.log")
if [ -z "$rbtrace" ]; then
    echo "rebalance printed no trace id"
    exit 1
fi
grep -q "lrukcluster: phase flip_sources" "$tmp/remove.log"
grep -q "lrukcluster: phase copy" "$tmp/remove.log"

echo "== reassemble the rebalance trace $rbtrace"
# The coordinator's admin requests (ViewSet/Flush/RangeRead/RangeWrite)
# ran under one trace; the nodes' request spans must cover at least the
# two surviving nodes plus the removed source.
"$tmp/lrukcluster" trace -obs "$obs3" "$rbtrace" | tee "$tmp/rbtrace.log"
rbsummary=$(grep "lrukcluster: trace $rbtrace " "$tmp/rbtrace.log")
nodes=$(printf '%s\n' "$rbsummary" | sed -n 's/.* nodes=\([0-9]*\) .*/\1/p')
if [ -z "$nodes" ] || [ "$nodes" -lt 2 ]; then
    echo "rebalance trace crossed $nodes nodes, want >=2: $rbsummary"
    exit 1
fi
case "$rbsummary" in
*" nest_violations=0") ;;
*)
    echo "rebalance trace reports nest violations: $rbsummary"
    exit 1
    ;;
esac

echo "== /healthz flips to 503 on drain (SIGTERM n2)"
kill -TERM "$pid2"
status=0
wait "$pid2" || status=$?
pid2=""
if [ "$status" -ne 0 ]; then
    echo "n2 exited $status:"
    cat "$tmp/n2.log"
    exit 1
fi
grep -q "lrukd: clean shutdown" "$tmp/n2.log"
if curl -fsS "http://127.0.0.1:$o2/healthz" >/dev/null 2>&1; then
    echo "n2's /healthz still answers 200 after shutdown"
    exit 1
fi

echo "== graceful shutdown of the survivors"
for n in 0 1; do
    eval "pid=\$pid$n"
    kill -TERM "$pid"
    status=0
    wait "$pid" || status=$?
    eval "pid$n="
    if [ "$status" -ne 0 ]; then
        echo "n$n exited $status:"
        cat "$tmp/n$n.log"
        exit 1
    fi
    grep -q "lrukd: clean shutdown" "$tmp/n$n.log"
done
echo "trace-smoke OK"
