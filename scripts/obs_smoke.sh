#!/bin/sh
# End-to-end smoke test of the observability plane: boot lrukd with a
# second (obs) listener, drive a load burst, then require that
#   - /metrics serves Prometheus text containing every layer's families
#     (pool, disk, policy, server) plus histogram summary quantiles,
#   - /trace serves a non-empty JSON eviction trace,
#   - /debug/pprof/ answers,
#   - the structured log line appears on stderr,
# and finally that the daemon still drains cleanly (obs server and logger
# both stopped, leak check passed).
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
daemon_pid=""
cleanup() {
    if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -KILL "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "== build lrukd + lrukload"
go build -o "$tmp/lrukd" ./cmd/lrukd
go build -o "$tmp/lrukload" ./cmd/lrukload

echo "== start lrukd with the obs plane"
"$tmp/lrukd" -addr 127.0.0.1:0 -obs-addr 127.0.0.1:0 \
    -obs-log-interval 500ms -customers 2000 -frames 128 \
    >"$tmp/lrukd.log" 2>"$tmp/lrukd.err" &
daemon_pid=$!

addr=""
obs_addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/^lrukd: serving on \([^ ]*\).*/\1/p' "$tmp/lrukd.log")
    obs_addr=$(sed -n 's/^lrukd: observability on \([^ ]*\).*/\1/p' "$tmp/lrukd.log")
    [ -n "$addr" ] && [ -n "$obs_addr" ] && break
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        echo "lrukd died during startup:"
        cat "$tmp/lrukd.log" "$tmp/lrukd.err"
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ] || [ -z "$obs_addr" ]; then
    echo "lrukd never printed both serving lines:"
    cat "$tmp/lrukd.log"
    exit 1
fi
echo "   lrukd at $addr, obs at $obs_addr (pid $daemon_pid)"

echo "== load burst"
"$tmp/lrukload" -addr "$addr" -clients 4 -duration 1s -keys 2000 \
    -min-hit-ratio 0.01 >"$tmp/load.log"
if ! grep -q "server_ms" "$tmp/load.log"; then
    echo "lrukload report lacks the server-side latency table:"
    cat "$tmp/load.log"
    exit 1
fi

# fetch <path> <outfile>: plain-HTTP GET without curl/wget, so the smoke
# runs anywhere the go toolchain does.
fetch() {
    go run ./scripts/internal/httpget "http://$obs_addr$1" >"$2"
}

echo "== scrape /metrics"
fetch /metrics "$tmp/metrics"
for family in \
    lruk_pool_hits_total \
    lruk_pool_fetch_seconds_count \
    lruk_pool_sweep_victims_count \
    lruk_disk_read_seconds_count \
    lruk_policy_evictions_total \
    lruk_policy_trace_records_total \
    lruk_server_request_seconds_count \
    lruk_server_queue_wait_seconds_count \
    lruk_record_cache_hits_total~absent \
    quantile=\"0.99\"; do
    case $family in
    *~absent)
        # No record cache was configured, so its families must not appear:
        # the exposition reflects the deployment, not every possible metric.
        name=${family%~absent}
        if grep -q "$name" "$tmp/metrics"; then
            echo "/metrics exposes $name despite no record cache"
            exit 1
        fi
        ;;
    *)
        if ! grep -q "$family" "$tmp/metrics"; then
            echo "/metrics missing $family:"
            head -40 "$tmp/metrics"
            exit 1
        fi
        ;;
    esac
done

echo "== fetch /trace"
fetch /trace "$tmp/trace"
if ! grep -q '"kind":"evict"' "$tmp/trace"; then
    echo "/trace holds no eviction records:"
    head -c 400 "$tmp/trace"
    exit 1
fi

echo "== probe /debug/pprof/"
fetch /debug/pprof/ "$tmp/pprof"
if ! grep -q "goroutine" "$tmp/pprof"; then
    echo "/debug/pprof/ index looks wrong:"
    head -20 "$tmp/pprof"
    exit 1
fi

echo "== wait for a structured log line"
i=0
while ! grep -q "obs ts=" "$tmp/lrukd.err"; do
    if [ $i -ge 50 ]; then
        echo "no structured log line on stderr after 5s"
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done

echo "== graceful shutdown (SIGTERM)"
kill -TERM "$daemon_pid"
status=0
wait "$daemon_pid" || status=$?
daemon_pid=""
if [ "$status" -ne 0 ]; then
    echo "lrukd exited $status:"
    cat "$tmp/lrukd.log" "$tmp/lrukd.err"
    exit 1
fi
if ! grep -q "lrukd: clean shutdown" "$tmp/lrukd.log"; then
    echo "lrukd exited 0 but never declared a clean shutdown:"
    cat "$tmp/lrukd.log"
    exit 1
fi
echo "obs-smoke OK"
