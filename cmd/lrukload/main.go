// Command lrukload is a closed-loop load generator for lrukd: N client
// connections each issue one request at a time (GET/UPDATE/SCAN in a
// weighted mix) against the page service for a fixed duration, then the
// tool fetches the server's STATS snapshot and prints a summary —
// throughput, a per-opcode latency table (client-side obs histograms, the
// same geometry the server exposes on /metrics), shed/unavailable/deadline
// counts, and the pool hit ratio. When the daemon runs with -obs-addr, the
// STATS reply carries the server's own histogram summaries and the table
// gains the server-side view — queue wait and per-op execution time — so
// client-observed and server-observed latency can be read side by side.
//
// Usage:
//
//	lrukload -addr 127.0.0.1:4980 -clients 8 -duration 5s -keys 10000
//	lrukload -addr ... -get 80 -update 20 -req-timeout 200ms
//	lrukload -addr ... -min-hit-ratio 0.01   # exit 1 below this ratio
//	lrukload -addr ... -ledger led.json      # crash-test load (see below)
//	lrukload -addr ... -ledger led.json -verify
//	lrukload -corrupt-pages 3 -data-dir /var/lib/lrukd   # offline bit-rot
//
// The -ledger / -verify pair is the durability crash test
// (scripts/crash_smoke.sh): -ledger drives an updates-only workload over a
// client-partitioned key space, recording each key's last acknowledged
// fill byte and lone in-flight update, and tolerates the server dying
// mid-run; -verify audits a restarted server against that file — every
// key must hold its last acknowledged value (or its single pending one),
// proving no acknowledged update was lost to the crash.
//
// Typed refusals (BUSY shed, UNAVAILABLE breaker, deadline) are counted,
// not fatal — they are the server doing its job under load. Transport
// errors are fatal in single-node mode: they mean the service broke its
// protocol or died.
//
// With -cluster "id=addr,..." the load is driven through the
// cluster-aware client instead of one socket: every request routes to its
// key's ring owner, MOVED redirects patch the membership view, and
// node-level failures are retried against the survivors — so transport
// errors are counted, not fatal. The summary gains a per-node table
// (request share, hit-ratio and shed deltas over the run) plus a skew
// line; -max-skew turns the skew into a gate, failing the run if the
// max/min request-share ratio exceeds it or any member is unreachable.
//
//	lrukload -cluster "n0=...,n1=...,n2=..." -max-skew 2.5 -min-hit-ratio 0.01
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/server/client"
	"repro/internal/server/wire"
	"repro/internal/stats"
	"repro/internal/storage/file"
)

// caller is the operation surface the load loops drive; both the
// single-node *client.Client and the cluster *cluster.Client satisfy it.
type caller interface {
	Get(ctx context.Context, custID int64) ([]byte, error)
	Update(ctx context.Context, custID int64, fill byte) error
	Scan(ctx context.Context) (int, error)
}

// connector hands each load loop its caller. Single-node mode dials a
// fresh connection per loop (and redials after a transport error);
// cluster mode shares one self-healing cluster client across all loops,
// so transport errors are recorded and the loop simply continues.
type connector struct {
	dial      func() (caller, func() error, error)
	resilient bool
}

// The load mix's opcodes, indexing each tally's latency histograms.
const (
	opGet = iota
	opUpdate
	opScan
	numLoadOps
)

var opNames = [numLoadOps]string{"get", "update", "scan"}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// tally is one client's outcome counts plus its per-opcode latency
// histograms (nanosecond observations; each client owns its own set, so
// recording never contends, and the fixed geometry makes the final merge a
// bucket-wise sum).
type tally struct {
	ok, busy, unavailable, deadline, notFound, remote uint64
	// transportN counts transport-level failures; transport keeps only the
	// first few as samples (a dead cluster node can produce thousands).
	transportN uint64
	transport  []error
	lat        [numLoadOps]*obs.Histogram
	// slowTrace/slowDur remember the client's slowest traced operation, so
	// the summary can print a trace id worth feeding to `lrukcluster trace`.
	slowTrace uint64
	slowDur   time.Duration
}

// maxTransportSamples caps the retained (and printed) transport errors.
const maxTransportSamples = 8

func (tl *tally) recordTransport(err error) {
	tl.transportN++
	if len(tl.transport) < maxTransportSamples {
		tl.transport = append(tl.transport, err)
	}
}

func newTally() tally {
	var tl tally
	for i := range tl.lat {
		tl.lat[i] = obs.NewHistogram()
	}
	return tl
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lrukload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:4980", "lrukd address")
		clients    = fs.Int("clients", 8, "concurrent client connections")
		duration   = fs.Duration("duration", 2*time.Second, "run length")
		keys       = fs.Int("keys", 10000, "customer key space [0, keys)")
		getW       = fs.Int("get", 90, "GET weight in the op mix")
		updateW    = fs.Int("update", 9, "UPDATE weight in the op mix")
		scanW      = fs.Int("scan", 1, "SCAN weight in the op mix")
		seed       = fs.Uint64("seed", 1, "RNG seed")
		reqTimeout = fs.Duration("req-timeout", time.Second, "per-request time budget")
		minHit     = fs.Float64("min-hit-ratio", 0, "fail unless the pool hit ratio reaches this (0 disables)")
		ledger     = fs.String("ledger", "", "crash-test ledger path: run an updates-only workload recording acknowledged fills per key (see -verify)")
		verify     = fs.Bool("verify", false, "verify a restarted server against the -ledger file instead of generating load")
		corruptN   = fs.Int("corrupt-pages", 0, "offline: flip one byte in N WAL-covered pages of -data-dir's page file, then exit (server must be stopped)")
		dataDir    = fs.String("data-dir", "", "data directory for -corrupt-pages")
		clusterFl  = fs.String("cluster", "", "cluster spec \"id=addr,...\": drive the whole cluster through the ring-aware client instead of -addr")
		maxSkew    = fs.Float64("max-skew", 0, "fail if the per-node request-share max/min ratio exceeds this (cluster mode; 0 disables)")
		traceFr    = fs.Float64("trace-sample", 0, "fraction of requests to send under a sampled trace context (0..1; needs the server's -trace-spans)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// The connector decides what each load loop talks to.
	conn := connector{dial: func() (caller, func() error, error) {
		cl, err := client.Dial(*addr)
		if err != nil {
			return nil, nil, err
		}
		return cl, cl.Close, nil
	}}
	var cc *cluster.Client
	if *clusterFl != "" {
		spec, err := cluster.ParseSpec(*clusterFl)
		if err != nil {
			fmt.Fprintln(stderr, "lrukload:", err)
			return 2
		}
		cc, err = cluster.New(cluster.Config{View: spec})
		if err != nil {
			fmt.Fprintln(stderr, "lrukload:", err)
			return 2
		}
		defer cc.Close()
		conn = connector{
			dial:      func() (caller, func() error, error) { return cc, func() error { return nil }, nil },
			resilient: true,
		}
	} else if *maxSkew > 0 {
		fmt.Fprintln(stderr, "lrukload: -max-skew requires -cluster")
		return 2
	}
	if *corruptN > 0 {
		if *dataDir == "" {
			fmt.Fprintln(stderr, "lrukload: -corrupt-pages requires -data-dir")
			return 2
		}
		pages, err := file.CorruptPages(*dataDir, *corruptN, *seed)
		if err != nil {
			fmt.Fprintln(stderr, "lrukload: corrupt-pages:", err)
			return 1
		}
		fmt.Fprintf(stdout, "lrukload: corrupted %d pages in %s: %v\n", len(pages), *dataDir, pages)
		return 0
	}
	if *verify {
		if *ledger == "" {
			fmt.Fprintln(stderr, "lrukload: -verify requires -ledger")
			return 2
		}
		return runVerify(ctx, *ledger, conn, *reqTimeout, stdout, stderr)
	}
	if *clients <= 0 || *keys <= 0 || *duration <= 0 {
		fmt.Fprintln(stderr, "lrukload: clients, keys, and duration must be positive")
		return 2
	}
	if *ledger != "" {
		return runLedgerLoad(ctx, *ledger, conn, *clients, time.Now().Add(*duration), *keys, *seed, *reqTimeout, stdout, stderr)
	}
	totalW := *getW + *updateW + *scanW
	if totalW <= 0 {
		fmt.Fprintln(stderr, "lrukload: op mix weights sum to zero")
		return 2
	}

	// In cluster mode, snapshot every node's counters first so the summary
	// can report per-node deltas attributable to this run alone.
	var before map[string]wire.StatsReply
	if cc != nil {
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		before, _ = cc.StatsAll(sctx)
		cancel()
	}

	tallies := make([]tally, *clients)
	var wg sync.WaitGroup
	end := time.Now().Add(*duration)
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tallies[i] = drive(ctx, conn, end, *keys, *getW, *updateW, totalW, *seed+uint64(i), *reqTimeout, byte(i), *traceFr)
		}(i)
	}
	wg.Wait()

	// Merge: outcome counts arithmetically, latency histograms bucket-wise
	// (snapshots of the shared geometry sum exactly).
	var sum tally
	var perOp [numLoadOps]obs.HistSnapshot
	var overall obs.HistSnapshot
	for _, tl := range tallies {
		sum.ok += tl.ok
		sum.busy += tl.busy
		sum.unavailable += tl.unavailable
		sum.deadline += tl.deadline
		sum.notFound += tl.notFound
		sum.remote += tl.remote
		sum.transportN += tl.transportN
		for _, err := range tl.transport {
			if len(sum.transport) < maxTransportSamples {
				sum.transport = append(sum.transport, err)
			}
		}
		for i := range tl.lat {
			s := tl.lat[i].Snapshot()
			perOp[i].Merge(s)
			overall.Merge(s)
		}
		if tl.slowTrace != 0 && tl.slowDur > sum.slowDur {
			sum.slowTrace, sum.slowDur = tl.slowTrace, tl.slowDur
		}
	}
	ops := sum.ok + sum.busy + sum.unavailable + sum.deadline + sum.notFound + sum.remote

	fmt.Fprintf(stdout, "lrukload: clients=%d duration=%v keys=%d mix get/update/scan=%d/%d/%d\n",
		*clients, *duration, *keys, *getW, *updateW, *scanW)
	fmt.Fprintf(stdout, "lrukload: ops=%d ok=%d busy=%d unavailable=%d deadline=%d not_found=%d remote_err=%d transport_err=%d\n",
		ops, sum.ok, sum.busy, sum.unavailable, sum.deadline, sum.notFound, sum.remote, sum.transportN)
	if overall.Count > 0 {
		fmt.Fprintf(stdout, "lrukload: throughput=%.0f ops/s latency_ms p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
			float64(ops)/duration.Seconds(),
			nsToMillis(overall.Quantile(0.50)),
			nsToMillis(overall.Quantile(0.95)),
			nsToMillis(overall.Quantile(0.99)),
			nsToMillis(float64(overall.Max)))
		fmt.Fprintf(stdout, "lrukload: %-10s %10s %10s %10s %10s %10s\n",
			"client_ms", "count", "p50", "p95", "p99", "max")
		for i, name := range opNames {
			if perOp[i].Count == 0 {
				continue
			}
			printLatencyRow(stdout, name, perOp[i].Count,
				nsToMillis(perOp[i].Quantile(0.50)), nsToMillis(perOp[i].Quantile(0.95)),
				nsToMillis(perOp[i].Quantile(0.99)), nsToMillis(float64(perOp[i].Max)))
		}
		printLatencyRow(stdout, "total", overall.Count,
			nsToMillis(overall.Quantile(0.50)), nsToMillis(overall.Quantile(0.95)),
			nsToMillis(overall.Quantile(0.99)), nsToMillis(float64(overall.Max)))
	}
	if sum.slowTrace != 0 {
		// The trace id most worth looking at: feed it to
		// `lrukcluster trace` against the nodes' obs addresses.
		fmt.Fprintf(stdout, "lrukload: slowest trace=%016x latency=%v\n", sum.slowTrace, sum.slowDur)
	}
	for _, err := range sum.transport {
		fmt.Fprintln(stderr, "lrukload: transport:", err)
	}
	if extra := sum.transportN - uint64(len(sum.transport)); extra > 0 {
		fmt.Fprintf(stderr, "lrukload: transport: ... and %d more\n", extra)
	}

	// The server-side view of the run: one node's stats in single-node
	// mode, the per-node delta table plus skew in cluster mode.
	code := 0
	hitRatio := -1.0
	if cc != nil {
		var skewOK bool
		hitRatio, skewOK = printClusterStats(ctx, cc, before, *maxSkew, stdout, stderr)
		if *maxSkew > 0 && !skewOK {
			code = 1
		}
	} else {
		cl, err := client.Dial(*addr)
		if err != nil {
			fmt.Fprintln(stderr, "lrukload: stats dial:", err)
		} else {
			defer cl.Close()
			sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
			defer cancel()
			reply, err := cl.Stats(sctx)
			if err != nil {
				fmt.Fprintln(stderr, "lrukload: stats:", err)
			} else {
				hitRatio = reply.DB.PoolHitRatio
				fmt.Fprintf(stdout, "lrukload: server conns=%d requests=%d shed=%d statuses=%v\n",
					reply.Server.Conns, reply.Server.Requests, reply.Server.Shed, reply.Server.Statuses)
				fmt.Fprintf(stdout, "lrukload: pool hits=%d misses=%d hit_ratio=%.4f disk_reads=%d quarantined=%d\n",
					reply.DB.Pool.Hits, reply.DB.Pool.Misses, hitRatio, reply.DB.Disk.Reads, reply.DB.Quarantined)
				printServerSummaries(stdout, reply.Obs)
			}
		}
	}

	// Transport errors fail a single-node run (the server broke or died);
	// in cluster mode they are the expected cost of node churn, already
	// absorbed by rerouting, and the gates below judge the outcome.
	if sum.transportN > 0 && cc == nil {
		code = 1
	}
	if ops == 0 {
		fmt.Fprintln(stderr, "lrukload: no operation completed")
		code = 1
	}
	if *minHit > 0 {
		if hitRatio < 0 {
			fmt.Fprintln(stderr, "lrukload: hit-ratio gate set but stats unavailable")
			code = 1
		} else if hitRatio < *minHit {
			fmt.Fprintf(stderr, "lrukload: pool hit ratio %.4f below required %.4f\n", hitRatio, *minHit)
			code = 1
		}
	}
	return code
}

// printClusterStats renders the per-node delta table over the run — each
// member's request count and share, hit-ratio and shed deltas — plus the
// request-share skew (max/min). Returns the cluster-wide hit ratio over
// the run's window and whether the skew check passed: every spec'd node
// reachable and skew within maxSkew (when set). Nodes that joined or
// left mid-run appear with whatever window the snapshots caught.
func printClusterStats(ctx context.Context, cc *cluster.Client, before map[string]wire.StatsReply,
	maxSkew float64, stdout, stderr io.Writer) (hitRatio float64, skewOK bool) {
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	after, err := cc.StatsAll(sctx)
	cancel()
	if err != nil {
		fmt.Fprintln(stderr, "lrukload: cluster stats:", err)
	}
	if len(after) == 0 {
		return -1, false
	}
	ids := make([]string, 0, len(after))
	for id := range after {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	type row struct {
		id              string
		dReq, dShed     uint64
		dHits, dLookups uint64
		hitRatio        float64
	}
	rows := make([]row, 0, len(ids))
	var totReq, totHits, totLookups uint64
	for _, id := range ids {
		a := after[id]
		b := before[id] // zero value when the node is new: full-history delta
		r := row{
			id:       id,
			dReq:     a.Server.Requests - b.Server.Requests,
			dShed:    a.Server.Shed - b.Server.Shed,
			dHits:    a.DB.Pool.Hits - b.DB.Pool.Hits,
			dLookups: (a.DB.Pool.Hits + a.DB.Pool.Misses) - (b.DB.Pool.Hits + b.DB.Pool.Misses),
		}
		r.hitRatio = -1
		if r.dLookups > 0 {
			r.hitRatio = float64(r.dHits) / float64(r.dLookups)
		}
		totReq += r.dReq
		totHits += r.dHits
		totLookups += r.dLookups
		rows = append(rows, r)
	}

	fmt.Fprintf(stdout, "lrukload: %-8s %12s %8s %12s %10s\n",
		"node", "requests", "share", "hit_ratio", "shed")
	minShare, maxShare := 1.0, 0.0
	for _, r := range rows {
		share := 0.0
		if totReq > 0 {
			share = float64(r.dReq) / float64(totReq)
		}
		if share < minShare {
			minShare = share
		}
		if share > maxShare {
			maxShare = share
		}
		hr := "n/a"
		if r.hitRatio >= 0 {
			hr = fmt.Sprintf("%.4f", r.hitRatio)
		}
		fmt.Fprintf(stdout, "lrukload:   %-6s %12d %8.3f %12s %10d\n",
			r.id, r.dReq, share, hr, r.dShed)
	}
	hitRatio = -1
	if totLookups > 0 {
		hitRatio = float64(totHits) / float64(totLookups)
	}

	skew := 0.0
	if minShare > 0 {
		skew = maxShare / minShare
	}
	skewOK = err == nil
	switch {
	case skew == 0:
		fmt.Fprintln(stdout, "lrukload: skew undefined (a node served nothing)")
		skewOK = false
	case maxSkew > 0 && skew > maxSkew:
		fmt.Fprintf(stderr, "lrukload: request-share skew %.2f exceeds -max-skew %.2f\n", skew, maxSkew)
		fmt.Fprintf(stdout, "lrukload: skew=%.2f (gate %.2f)\n", skew, maxSkew)
		skewOK = false
	default:
		fmt.Fprintf(stdout, "lrukload: skew=%.2f\n", skew)
	}
	if err != nil && maxSkew > 0 {
		fmt.Fprintln(stderr, "lrukload: -max-skew gate set but a member was unreachable")
	}
	return hitRatio, skewOK
}

// nsToMillis converts a nanosecond histogram value to milliseconds.
func nsToMillis(ns float64) float64 { return ns / 1e6 }

// printLatencyRow emits one line of the latency table.
func printLatencyRow(w io.Writer, name string, count uint64, p50, p95, p99, max float64) {
	fmt.Fprintf(w, "lrukload:   %-8s %10d %10.3f %10.3f %10.3f %10.3f\n",
		name, count, p50, p95, p99, max)
}

// printServerSummaries renders the server's own histogram digests from the
// STATS reply (present only when lrukd runs with -obs-addr): per-op
// execution time and queue wait, in milliseconds, next to the client-side
// table above. The gap between the two is wire plus queueing.
func printServerSummaries(w io.Writer, summaries map[string]obs.HistSummary) {
	if len(summaries) == 0 {
		return
	}
	fmt.Fprintf(w, "lrukload: %-10s %10s %10s %10s %10s %10s\n",
		"server_ms", "count", "p50", "p95", "p99", "max")
	const secToMs = 1e3
	for _, name := range opNames {
		sum, ok := summaries[`lruk_server_request_seconds{op="`+name+`"}`]
		if !ok || sum.Count == 0 {
			continue
		}
		printLatencyRow(w, name, sum.Count,
			sum.P50*secToMs, sum.P95*secToMs, sum.P99*secToMs, sum.Max*secToMs)
	}
	if sum, ok := summaries["lruk_server_queue_wait_seconds"]; ok && sum.Count > 0 {
		printLatencyRow(w, "queue", sum.Count,
			sum.P50*secToMs, sum.P95*secToMs, sum.P99*secToMs, sum.Max*secToMs)
	}
	if sum, ok := summaries["lruk_pool_fetch_seconds"]; ok && sum.Count > 0 {
		printLatencyRow(w, "fetch", sum.Count,
			sum.P50*secToMs, sum.P95*secToMs, sum.P99*secToMs, sum.Max*secToMs)
	}
}

// drive runs one closed-loop client until end (or ctx cancellation),
// reconnecting once per transport error so a single hiccup does not idle
// the connection's whole share of the load. A resilient connector (the
// cluster client) needs no reconnect: its per-node pools self-heal, so
// the loop records the failure and keeps going.
func drive(ctx context.Context, conn connector, end time.Time, keys, getW, updateW, totalW int, seed uint64, reqTimeout time.Duration, fill byte, traceFr float64) tally {
	tl := newTally()
	rng := stats.NewRNG(seed)
	cl, closeCl, err := conn.dial()
	if err != nil {
		tl.recordTransport(err)
		return tl
	}
	defer func() { _ = closeCl() }()
	for time.Now().Before(end) && ctx.Err() == nil {
		key := int64(rng.Intn(keys))
		rctx, cancel := context.WithTimeout(ctx, reqTimeout)
		// A sampled fraction of requests carry a trace context: the seeded
		// stream makes the choice (and the ids) reproducible per client.
		var traceID uint64
		if traceFr > 0 && rng.Float64() < traceFr {
			for traceID == 0 {
				traceID = rng.Uint64()
			}
			rctx = obs.ContextWithTrace(rctx, obs.TraceContext{
				TraceID: traceID, SpanID: rng.Uint64(), Sampled: true,
			})
		}
		began := time.Now()
		var err error
		var op int
		switch draw := rng.Intn(totalW); {
		case draw < getW:
			op = opGet
			_, err = cl.Get(rctx, key)
		case draw < getW+updateW:
			op = opUpdate
			err = cl.Update(rctx, key, fill)
		default:
			op = opScan
			_, err = cl.Scan(rctx)
		}
		cancel()
		var remote *client.Error
		switch {
		case err == nil:
			tl.ok++
		case errors.Is(err, client.ErrBusy):
			tl.busy++
		case errors.Is(err, client.ErrUnavailable):
			tl.unavailable++
		case errors.Is(err, context.DeadlineExceeded) && errors.As(err, &remote):
			// Deadline refused by the server: a counted outcome.
			tl.deadline++
		case errors.Is(err, client.ErrNotFound):
			tl.notFound++
		case errors.As(err, &remote):
			tl.remote++
		default:
			// Transport failure. The aborted request's latency is not
			// recorded — it measured the failure, not the service. A plain
			// connection is poisoned: record and reconnect (repeated dial
			// failures end the client). The cluster client already retried
			// and rerouted internally; just keep driving.
			tl.recordTransport(err)
			if conn.resilient {
				continue
			}
			_ = closeCl()
			cl, closeCl, err = conn.dial()
			if err != nil {
				tl.recordTransport(err)
				return tl
			}
			continue
		}
		dur := time.Since(began)
		tl.lat[op].Observe(dur.Nanoseconds())
		if traceID != 0 && dur > tl.slowDur {
			tl.slowTrace, tl.slowDur = traceID, dur
		}
	}
	return tl
}
