package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/server/client"
	"repro/internal/stats"
)

// This file is the crash-test half of lrukload: the -ledger mode drives an
// updates-only workload while recording, per key, the last fill byte the
// server acknowledged and the one update that was in flight when the
// connection died; the -verify mode replays that ledger against a restarted
// server. Together they pin the durable backend's acknowledgement
// contract: after a kill -9, every key must hold its last acknowledged
// value or the value of its single in-flight update — never anything
// older, and never garbage.
//
// The key space is partitioned by client (client i owns keys ≡ i mod
// clients), so each key's updates are issued serially by one closed-loop
// client and "last acknowledged" is well defined without cross-client
// ordering. A ledger client stops at its first transport error rather than
// reconnecting: the server is presumed mid-crash, and stopping caps the
// uncertainty at one pending update per key.

// ledgerEntry is one key's durability claim. Values are fill bytes
// (0..255); -1 means none.
type ledgerEntry struct {
	// Acked is the fill byte of the last acknowledged update: the server
	// returned OK, so durable mode promises it reached the fsynced WAL.
	Acked int `json:"acked"`
	// Pending is the fill byte of an update whose acknowledgement never
	// arrived (refused, deadline, or in flight at the crash). It may or
	// may not have reached the log.
	Pending int `json:"pending"`
}

// ledgerFile is the JSON document -ledger writes and -verify reads.
type ledgerFile struct {
	Keys    int                   `json:"keys"`
	Entries map[int64]ledgerEntry `json:"entries"`
}

// runLedgerLoad drives the updates-only partitioned workload and writes
// the ledger when the run ends (by duration, signal, or server death).
func runLedgerLoad(ctx context.Context, path string, conn connector, clients int, end time.Time, keys int, seed uint64, reqTimeout time.Duration, stdout, stderr io.Writer) int {
	maps := make([]map[int64]ledgerEntry, clients)
	tallies := make([]tally, clients)
	done := make(chan int, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			maps[i], tallies[i] = driveLedger(ctx, conn, end, keys, clients, i, seed+uint64(i), reqTimeout)
			done <- i
		}(i)
	}
	for i := 0; i < clients; i++ {
		<-done
	}

	led := ledgerFile{Keys: keys, Entries: make(map[int64]ledgerEntry)}
	var acked, pending uint64
	var transport int
	for i, m := range maps {
		for k, e := range m { // partitions are disjoint: no merge conflicts
			led.Entries[k] = e
			if e.Acked >= 0 {
				acked++
			}
			if e.Pending >= 0 {
				pending++
			}
		}
		transport += int(tallies[i].transportN)
	}
	raw, err := json.MarshalIndent(led, "", " ")
	if err != nil {
		fmt.Fprintln(stderr, "lrukload: encoding ledger:", err)
		return 1
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		fmt.Fprintln(stderr, "lrukload: writing ledger:", err)
		return 1
	}
	var ok uint64
	for _, tl := range tallies {
		ok += tl.ok
	}
	fmt.Fprintf(stdout, "lrukload: ledger %s: keys_touched=%d acked_updates=%d keys_with_acks=%d keys_pending=%d transport_errs=%d\n",
		path, len(led.Entries), ok, acked, pending, transport)
	if ok == 0 {
		// Nothing was ever acknowledged: the crash test would verify an
		// empty claim. The server died before the load landed.
		fmt.Fprintln(stderr, "lrukload: no update was acknowledged; ledger is vacuous")
		return 1
	}
	return 0
}

// driveLedger is one ledger client's closed loop over its own key
// partition. Every attempt is recorded as pending before it is sent; an
// acknowledgement promotes it to acked. A typed refusal leaves it pending
// (a deadline can fire after the update applied but before the durable
// flush, so "refused" does not mean "not applied"). A transport error ends
// the client immediately.
func driveLedger(ctx context.Context, conn connector, end time.Time, keys, clients, self int, seed uint64, reqTimeout time.Duration) (map[int64]ledgerEntry, tally) {
	entries := make(map[int64]ledgerEntry)
	tl := newTally()
	owned := (keys - self + clients - 1) / clients // |{k : k ≡ self (mod clients)}|
	if owned == 0 {
		return entries, tl
	}
	rng := stats.NewRNG(seed)
	seq := make(map[int64]int)
	cl, closeCl, err := conn.dial()
	if err != nil {
		tl.recordTransport(err)
		return entries, tl
	}
	defer func() { _ = closeCl() }()
	for time.Now().Before(end) && ctx.Err() == nil {
		key := int64(self + rng.Intn(owned)*clients)
		seq[key]++
		fill := byte(seq[key]%255) + 1 // never 0: 0 is the never-updated filler
		e, ok := entries[key]
		if !ok {
			e = ledgerEntry{Acked: -1, Pending: -1}
		}
		e.Pending = int(fill)
		entries[key] = e

		rctx, cancel := context.WithTimeout(ctx, reqTimeout)
		began := time.Now()
		err := cl.Update(rctx, key, fill)
		cancel()
		var remote *client.Error
		switch {
		case err == nil:
			e.Acked, e.Pending = int(fill), -1
			entries[key] = e
			tl.ok++
			tl.lat[opUpdate].ObserveSince(began)
		case errors.Is(err, client.ErrBusy):
			tl.busy++
		case errors.Is(err, client.ErrUnavailable):
			tl.unavailable++
		case errors.Is(err, context.DeadlineExceeded):
			tl.deadline++
		case errors.As(err, &remote):
			tl.remote++
		default:
			// Transport means the server (or, through the cluster client,
			// every viable route to the key's owner) is gone. Stop rather
			// than reconnect: the uncertainty stays one pending update per
			// key.
			tl.recordTransport(err)
			return entries, tl
		}
	}
	return entries, tl
}

// runVerify reads the ledger and audits every key of the restarted server:
// each key must carry its last acknowledged fill or its single pending
// one, and keys the ledger never touched must still hold the loader's
// zero filler.
func runVerify(ctx context.Context, path string, conn connector, reqTimeout time.Duration, stdout, stderr io.Writer) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "lrukload: reading ledger:", err)
		return 1
	}
	var led ledgerFile
	if err := json.Unmarshal(raw, &led); err != nil {
		fmt.Fprintln(stderr, "lrukload: decoding ledger:", err)
		return 1
	}
	if led.Keys <= 0 {
		fmt.Fprintln(stderr, "lrukload: ledger has no key space")
		return 1
	}
	cl, closeCl, err := conn.dial()
	if err != nil {
		fmt.Fprintln(stderr, "lrukload: verify dial:", err)
		return 1
	}
	defer func() { _ = closeCl() }()

	var ackedChecked, pendingAccepted, mismatches int
	for key := int64(0); key < int64(led.Keys); key++ {
		rctx, cancel := context.WithTimeout(ctx, reqTimeout)
		rec, err := cl.Get(rctx, key)
		cancel()
		if err != nil {
			fmt.Fprintf(stderr, "lrukload: verify: get %d: %v\n", key, err)
			mismatches++
			continue
		}
		if len(rec) <= 8 {
			fmt.Fprintf(stderr, "lrukload: verify: key %d: record only %d bytes\n", key, len(rec))
			mismatches++
			continue
		}
		fill := rec[8]
		if !bytes.Equal(rec[8:], bytes.Repeat([]byte{fill}, len(rec)-8)) {
			fmt.Fprintf(stderr, "lrukload: verify: key %d: torn filler (mixed bytes)\n", key)
			mismatches++
			continue
		}
		e, ok := led.Entries[key]
		switch {
		case !ok:
			if fill != 0 {
				fmt.Fprintf(stderr, "lrukload: verify: key %d holds %#x, never updated\n", key, fill)
				mismatches++
			}
		case e.Acked >= 0:
			// The durable promise: never older than the last ack.
			switch int(fill) {
			case e.Acked:
				ackedChecked++
			case e.Pending:
				pendingAccepted++
			default:
				fmt.Fprintf(stderr, "lrukload: verify: key %d holds %#x, want acked %#x or pending %#x\n",
					key, fill, e.Acked, e.Pending)
				mismatches++
			}
		default: // pending only: the one update may or may not have landed
			if int(fill) != e.Pending && fill != 0 {
				fmt.Fprintf(stderr, "lrukload: verify: key %d holds %#x, want pending %#x or untouched 0\n",
					key, fill, e.Pending)
				mismatches++
			}
		}
	}
	fmt.Fprintf(stdout, "lrukload: verify %s: keys=%d acked_confirmed=%d pending_accepted=%d mismatches=%d\n",
		path, led.Keys, ackedChecked, pendingAccepted, mismatches)
	if mismatches > 0 {
		fmt.Fprintln(stderr, "lrukload: verification FAILED: acknowledged updates were lost or corrupted")
		return 1
	}
	fmt.Fprintln(stdout, "lrukload: verification passed: every acknowledged update survived")
	return 0
}
