package main

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/leakcheck"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/server/wire"
)

// startService boots an in-process database and page server for the load
// generator to hit, and returns its address. A non-nil registry arms the
// full observability stack on both.
func startService(t *testing.T, customers int, reg *obs.Registry) string {
	t.Helper()
	database, err := db.Open(db.Config{Frames: 128, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { database.Close() })
	if err := database.LoadCustomers(customers); err != nil {
		t.Fatal(err)
	}
	srv := server.New(database, server.Config{Addr: "127.0.0.1:0", Obs: reg})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr().String()
}

// TestRunAgainstLiveServer drives a short mixed load and checks the
// summary: exit 0, every op accounted for, and a hit ratio high enough to
// clear the gate (the key space fits in the pool, so the ratio is high).
func TestRunAgainstLiveServer(t *testing.T) {
	leakcheck.Check(t)
	addr := startService(t, 500, nil)

	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-addr", addr,
		"-clients", "4",
		"-duration", "300ms",
		"-keys", "500",
		"-min-hit-ratio", "0.01",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"lrukload: ops=", "transport_err=0", "hit_ratio="} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "ops=0 ") {
		t.Fatalf("no operations completed:\n%s", out)
	}
}

// TestRunShowsServerSummaries: against an instrumented service, the final
// report carries both latency tables — client-observed per op and the
// server's own histogram digests from the STATS reply.
func TestRunShowsServerSummaries(t *testing.T) {
	leakcheck.Check(t)
	addr := startService(t, 300, obs.NewRegistry())

	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-addr", addr,
		"-clients", "2",
		"-duration", "200ms",
		"-keys", "300",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"client_ms", "server_ms", "lrukload:   get", "lrukload:   total", "lrukload:   queue", "lrukload:   fetch"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestRunHitRatioGateFails proves the -min-hit-ratio gate actually gates:
// an impossible threshold must turn an otherwise clean run into exit 1.
func TestRunHitRatioGateFails(t *testing.T) {
	leakcheck.Check(t)
	addr := startService(t, 200, nil)

	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-addr", addr,
		"-clients", "2",
		"-duration", "100ms",
		"-keys", "200",
		"-min-hit-ratio", "1.1", // unreachable: ratios live in [0, 1]
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("unreachable gate exited %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "below required") {
		t.Errorf("gate failure not reported: %q", stderr.String())
	}
}

// TestRunUnreachableServer: nothing listening means every client records a
// transport error and the run fails.
func TestRunUnreachableServer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-addr", "127.0.0.1:1", // nothing listens here
		"-clients", "1",
		"-duration", "50ms",
		"-keys", "10",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("unreachable server exited %d, want 1", code)
	}
}

// TestRunRejectsBadFlags exercises the usage exit paths.
func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-get", "0", "-update", "0", "-scan", "0"}, &stdout, &stderr); code != 2 {
		t.Fatalf("zero op mix exited %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-max-skew", "2"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-max-skew without -cluster exited %d, want 2", code)
	}
}

// TestRunClusterMode drives a 3-node in-process cluster through the
// ring-aware client: exit 0 under the skew and hit-ratio gates, and the
// summary carries the per-node delta table plus the skew line.
func TestRunClusterMode(t *testing.T) {
	leakcheck.Check(t)
	const customers = 600
	specParts := make([]string, 3)
	view := wire.View{Epoch: 1}
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("n%d", i)
		database, err := db.Open(db.Config{Frames: 128})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { database.Close() })
		if err := database.LoadCustomers(customers); err != nil {
			t.Fatal(err)
		}
		srv := server.New(database, server.Config{Addr: "127.0.0.1:0", NodeID: id})
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addr := srv.Addr().String()
		specParts[i] = id + "=" + addr
		view.Nodes = append(view.Nodes, wire.NodeAddr{ID: id, Addr: addr})
	}
	ctx := context.Background()
	for _, n := range view.Nodes {
		cl, err := client.Dial(n.Addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.ViewSet(ctx, view); err != nil {
			t.Fatal(err)
		}
		cl.Close()
	}

	var stdout, stderr bytes.Buffer
	code := run(ctx, []string{
		"-cluster", strings.Join(specParts, ","),
		"-clients", "4",
		"-duration", "400ms",
		"-keys", fmt.Sprint(customers),
		"-max-skew", "3.0",
		"-min-hit-ratio", "0.01",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("cluster run exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"lrukload: node", "lrukload:   n0", "lrukload:   n1", "lrukload:   n2", "lrukload: skew="} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "transport_err=") && !strings.Contains(out, "transport_err=0") {
		t.Errorf("clean cluster run reported transport errors:\n%s", out)
	}
}
