package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/leakcheck"
	"repro/internal/obs"
	"repro/internal/server"
)

// startService boots an in-process database and page server for the load
// generator to hit, and returns its address. A non-nil registry arms the
// full observability stack on both.
func startService(t *testing.T, customers int, reg *obs.Registry) string {
	t.Helper()
	database, err := db.Open(db.Config{Frames: 128, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { database.Close() })
	if err := database.LoadCustomers(customers); err != nil {
		t.Fatal(err)
	}
	srv := server.New(database, server.Config{Addr: "127.0.0.1:0", Obs: reg})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr().String()
}

// TestRunAgainstLiveServer drives a short mixed load and checks the
// summary: exit 0, every op accounted for, and a hit ratio high enough to
// clear the gate (the key space fits in the pool, so the ratio is high).
func TestRunAgainstLiveServer(t *testing.T) {
	leakcheck.Check(t)
	addr := startService(t, 500, nil)

	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-addr", addr,
		"-clients", "4",
		"-duration", "300ms",
		"-keys", "500",
		"-min-hit-ratio", "0.01",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"lrukload: ops=", "transport_err=0", "hit_ratio="} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "ops=0 ") {
		t.Fatalf("no operations completed:\n%s", out)
	}
}

// TestRunShowsServerSummaries: against an instrumented service, the final
// report carries both latency tables — client-observed per op and the
// server's own histogram digests from the STATS reply.
func TestRunShowsServerSummaries(t *testing.T) {
	leakcheck.Check(t)
	addr := startService(t, 300, obs.NewRegistry())

	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-addr", addr,
		"-clients", "2",
		"-duration", "200ms",
		"-keys", "300",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"client_ms", "server_ms", "lrukload:   get", "lrukload:   total", "lrukload:   queue", "lrukload:   fetch"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestRunHitRatioGateFails proves the -min-hit-ratio gate actually gates:
// an impossible threshold must turn an otherwise clean run into exit 1.
func TestRunHitRatioGateFails(t *testing.T) {
	leakcheck.Check(t)
	addr := startService(t, 200, nil)

	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-addr", addr,
		"-clients", "2",
		"-duration", "100ms",
		"-keys", "200",
		"-min-hit-ratio", "1.1", // unreachable: ratios live in [0, 1]
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("unreachable gate exited %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "below required") {
		t.Errorf("gate failure not reported: %q", stderr.String())
	}
}

// TestRunUnreachableServer: nothing listening means every client records a
// transport error and the run fails.
func TestRunUnreachableServer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-addr", "127.0.0.1:1", // nothing listens here
		"-clients", "1",
		"-duration", "50ms",
		"-keys", "10",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("unreachable server exited %d, want 1", code)
	}
}

// TestRunRejectsBadFlags exercises the usage exit paths.
func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-get", "0", "-update", "0", "-scan", "0"}, &stdout, &stderr); code != 2 {
		t.Fatalf("zero op mix exited %d, want 2", code)
	}
}
