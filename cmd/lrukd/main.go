// Command lrukd is the network page-service daemon: it assembles the
// miniature customer database (LRU-K buffer pool, B-tree index, heap
// file), loads a synthetic customer population, and serves it over the
// wire protocol of internal/server until SIGTERM/SIGINT, then drains
// gracefully and verifies its own shutdown leaked no goroutines.
//
// Usage:
//
//	lrukd -addr 127.0.0.1:4980 -customers 10000 -frames 404 -k 2
//	lrukd -addr 127.0.0.1:0 ...   # free port; read it from the serving line
//	lrukd -backend=file -data-dir=/var/lib/lrukd ...   # durable store
//	lrukd -node-id n0 -cluster "n0=127.0.0.1:4980,n1=127.0.0.1:4981" ...
//
// With -node-id/-cluster the node boots holding an epoch-1 membership
// view over the spec'd peers: record requests for keys the consistent-hash
// ring assigns elsewhere are refused with a MOVED redirect naming the
// owner, and the serving line gains a node=<id> field. Every member must
// be started with the same spec (see README "Running a cluster").
//
// With -backend=file the customer pages live in a WAL-protected page file
// under -data-dir: the first start loads and checkpoints the population,
// and every restart recovers the dataset (acknowledged updates included)
// instead of reloading, printing
//
//	lrukd: recovered <dir> (replayed=... torn_tail=... customers=...)
//
// On startup it prints exactly one line of the form
//
//	lrukd: serving on <host:port> (customers=... frames=... k=... workers=... queue=...)
//
// which scripts/serve_smoke.sh parses for the bound address. With
// -obs-addr it additionally prints
//
//	lrukd: observability on <host:port>
//
// and serves /metrics (Prometheus text), /trace (the eviction trace ring
// as JSON), /healthz (readiness: 503 until serving, 503 again once
// draining) and /debug/pprof/* on that second listener; with -trace-spans
// it also serves /spans (the distributed-tracing span ring, ?trace=<hex>
// filters one trace). -trace-sample head-samples that fraction of
// requests; -trace-slow tail-samples any request at least that slow.
// -obs-log-interval adds a periodic structured stats line on stderr. On a
// clean exit it prints "lrukd: clean shutdown" and exits 0; any drain
// failure or leaked goroutine exits 1.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/bufferpool"
	"repro/internal/cluster"
	"repro/internal/db"
	"repro/internal/leakcheck"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/wire"
	"repro/internal/storage"
	"repro/internal/storage/file"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lrukd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:4980", "TCP listen address (:0 picks a free port)")
		backend   = fs.String("backend", "sim", "storage backend: sim (in-memory simulated disk) or file (durable page file with WAL)")
		dataDir   = fs.String("data-dir", "", "data directory for -backend=file (created if missing)")
		customers = fs.Int("customers", 10000, "customer records to load before serving")
		frames    = fs.Int("frames", 404, "buffer pool size in pages")
		k         = fs.Int("k", 2, "LRU-K history depth (1 = classical LRU)")
		workers   = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue     = fs.Int("queue", 0, "admission queue depth beyond the workers (0 = 4x workers)")
		recCache  = fs.Int("record-cache", 0, "record cache size in records (0 = off; see DESIGN.md §11 caveat)")
		accBatch  = fs.Int("access-batch", 0, "replacer access-buffer capacity in events per slot (0 = off; see DESIGN.md §14)")
		drain     = fs.Duration("drain", 5*time.Second, "graceful drain window on shutdown")
		maxReq    = fs.Duration("max-request-timeout", 30*time.Second, "cap on any request's time budget")
		obsAddr   = fs.String("obs-addr", "", "observability HTTP address serving /metrics, /trace and /debug/pprof (empty = off)")
		obsLog    = fs.Duration("obs-log-interval", 0, "period between structured stats log lines on stderr (0 = off; needs -obs-addr)")
		traceSize = fs.Int("trace-size", 512, "eviction trace ring capacity in records (with -obs-addr)")
		spanCap   = fs.Int("trace-spans", 0, "distributed-tracing span ring capacity (0 = tracing off)")
		sampleFr  = fs.Float64("trace-sample", 0, "fraction of requests to head-sample into traces (0..1)")
		slowThr   = fs.Duration("trace-slow", 0, "tail-sample any request at least this slow (0 = off)")
		scrubIval = fs.Duration("scrub-interval", 0, "period between background integrity scrub sweeps (0 = off)")
		verify    = fs.Bool("verify-reads", true, "verify per-page checksum trailers on every read (-backend=file)")
		maxWAL    = fs.Int64("max-wal-bytes", 0, "force a checkpoint when the WAL exceeds this size (-backend=file; 0 = no cap)")
		nodeID    = fs.String("node-id", "", "this node's identity in a cluster (required with -cluster)")
		clusterFl = fs.String("cluster", "", "cluster membership spec \"id=addr,...\" naming every node including this one (bootstraps an epoch-1 view)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Cluster bootstrap: a spec names every member; this node must be one
	// of them. The parsed epoch-0 hint is stamped to epoch 1, so a node
	// booted from the spec is authoritative over spec-configured clients
	// (a newer view installed later via VIEW_SET still wins).
	var view *wire.View
	if *clusterFl != "" {
		if *nodeID == "" {
			fmt.Fprintln(stderr, "lrukd: -cluster requires -node-id")
			return 2
		}
		spec, err := cluster.ParseSpec(*clusterFl)
		if err != nil {
			fmt.Fprintln(stderr, "lrukd:", err)
			return 2
		}
		if _, ok := spec.Node(*nodeID); !ok {
			fmt.Fprintf(stderr, "lrukd: node id %q is not in the cluster spec\n", *nodeID)
			return 2
		}
		v := cluster.Bootstrap(spec)
		view = &v
	}

	// Snapshot the goroutine baseline before anything is spawned, so the
	// post-drain leak check measures only what lrukd itself started.
	baseline := runtime.NumGoroutine()

	var reg *obs.Registry
	if *obsAddr != "" {
		reg = obs.NewRegistry()
	}
	// The span recorder exists independently of the obs listener (spans are
	// recorded either way; /spans just needs -obs-addr to be readable). Its
	// ids are salted by the node identity so two nodes never mint colliding
	// span ids within one trace.
	var spanRec *obs.SpanRecorder
	if *spanCap > 0 {
		spanRec = obs.NewSpanRecorder(*nodeID, *spanCap)
	}

	// Backend selection: the default simulated disk, or the durable
	// file-backed store. The database owns whichever backend it is handed
	// and closes it on Close.
	var store storage.Backend
	switch *backend {
	case "sim":
		if *dataDir != "" {
			fmt.Fprintln(stderr, "lrukd: -data-dir requires -backend=file")
			return 2
		}
	case "file":
		if *dataDir == "" {
			fmt.Fprintln(stderr, "lrukd: -backend=file requires -data-dir")
			return 2
		}
		s, err := file.OpenConfig(*dataDir, file.Config{
			VerifyReads: *verify,
			MaxWALBytes: *maxWAL,
			Spans:       spanRec,
		})
		if err != nil {
			fmt.Fprintln(stderr, "lrukd:", err)
			return 1
		}
		store = s
	default:
		fmt.Fprintf(stderr, "lrukd: unknown backend %q (want sim or file)\n", *backend)
		return 2
	}

	database, err := db.Open(db.Config{
		Backend:           store,
		Frames:            *frames,
		K:                 *k,
		RecordCacheSize:   *recCache,
		AccessBatch:       *accBatch,
		Obs:               reg,
		EvictionTraceSize: *traceSize,
		ScrubInterval:     *scrubIval,
		Spans:             spanRec,
		// Production-shaped fault posture: bounded transient retry and a
		// per-stripe circuit breaker, the PR 3 machinery the server maps
		// onto wire statuses.
		DiskRetry: bufferpool.RetryConfig{
			Attempts:  3,
			BaseDelay: 500 * time.Microsecond,
			MaxDelay:  5 * time.Millisecond,
			Seed:      uint64(os.Getpid()),
		},
		DiskBreaker: bufferpool.BreakerConfig{
			Threshold: 8,
			Cooldown:  250 * time.Millisecond,
			Probes:    2,
		},
	})
	if err != nil {
		fmt.Fprintln(stderr, "lrukd:", err)
		if store != nil {
			_ = store.Close()
		}
		return 1
	}
	if database.Attached() {
		// Durable reopen: recovery replayed the WAL and the catalog
		// re-anchored the dataset; there is nothing to load.
		if ri, ok := database.Recovery(); ok {
			fmt.Fprintf(stdout, "lrukd: recovered %s (replayed=%d torn_tail=%v customers=%d)\n",
				*dataDir, ri.Replayed, ri.TailDropped, database.CustomerCount())
		}
		*customers = database.CustomerCount()
	} else {
		if err := database.LoadCustomers(*customers); err != nil {
			fmt.Fprintln(stderr, "lrukd:", err)
			database.Close()
			return 1
		}
		if *backend == "file" {
			// Checkpoint the freshly loaded dataset: the catalog is
			// published and the WAL truncated, so the population phase is
			// not replayed on every subsequent start.
			if err := database.FlushAll(); err != nil {
				fmt.Fprintln(stderr, "lrukd:", err)
				database.Close()
				return 1
			}
		}
	}

	srv := server.New(database, server.Config{
		Addr:              *addr,
		Workers:           *workers,
		QueueDepth:        *queue,
		DrainTimeout:      *drain,
		MaxRequestTimeout: *maxReq,
		Obs:               reg,
		NodeID:            *nodeID,
		View:              view,
		Spans:             spanRec,
		Sampler: obs.Sampler{
			Fraction:      *sampleFr,
			Seed:          uint64(os.Getpid()),
			SlowThreshold: *slowThr,
		},
	})
	if err := srv.Start(); err != nil {
		fmt.Fprintln(stderr, "lrukd:", err)
		database.Close()
		return 1
	}
	var serving atomic.Bool
	serving.Store(true)
	cfg := srv.Addr()
	node := ""
	if *nodeID != "" {
		node = fmt.Sprintf(" node=%s", *nodeID)
	}
	fmt.Fprintf(stdout, "lrukd: serving on %s (customers=%d frames=%d k=%d workers=%d queue=%d%s)\n",
		cfg, *customers, *frames, *k, *workers, *queue, node)

	// The observability plane is a separate HTTP listener: /metrics and
	// pprof never compete with page traffic for the wire protocol's workers,
	// and an operator can firewall the two ports independently.
	var obsSrv *http.Server
	var stopLogger func()
	if reg != nil {
		opts := []obs.HandlerOption{obs.WithHealth(func() obs.Health {
			return obs.Health{
				Serving:      serving.Load(),
				ViewEpoch:    srv.Stats().ViewEpoch,
				RecoveryDone: true, // db.Open returned: any WAL replay is behind us
				Node:         *nodeID,
			}
		})}
		if spanRec != nil {
			opts = append(opts, obs.WithSpans(spanRec))
		}
		mux := obs.Handler(reg, opts...)
		mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(database.EvictionTrace())
		})
		ln, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			fmt.Fprintln(stderr, "lrukd: obs listen:", err)
			_ = srv.Close()
			database.Close()
			return 1
		}
		obsSrv = &http.Server{Handler: mux}
		go func() { _ = obsSrv.Serve(ln) }()
		fmt.Fprintf(stdout, "lrukd: observability on %s\n", ln.Addr())
		if *obsLog > 0 {
			stopLogger = obs.StartLogger(stderr, reg, *obsLog)
		}
	}

	<-ctx.Done()
	serving.Store(false) // /healthz flips to 503 before the drain begins
	fmt.Fprintln(stdout, "lrukd: draining")

	code := 0
	if stopLogger != nil {
		stopLogger()
	}
	if obsSrv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := obsSrv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(stderr, "lrukd: obs close:", err)
			code = 1
		}
		cancel()
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintln(stderr, "lrukd: server close:", err)
		code = 1
	}
	if err := database.Close(); err != nil {
		fmt.Fprintln(stderr, "lrukd: db close:", err)
		code = 1
	}
	// The drain contract: nothing we started survives shutdown. The grace
	// period absorbs goroutines mid-exit (timers, conn teardown).
	if err := leakcheck.Wait(baseline, 3*time.Second); err != nil {
		fmt.Fprintln(stderr, "lrukd:", err)
		code = 1
	}
	if code == 0 {
		fmt.Fprintln(stdout, "lrukd: clean shutdown")
	}
	return code
}
