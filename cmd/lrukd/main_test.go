package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server/client"
)

// syncBuffer lets the test read lrukd's output while run is still writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunServesAndDrainsCleanly is the daemon's whole life in miniature:
// boot on a free port, answer a request, receive the shutdown signal
// (modelled by ctx cancellation), and exit 0 having printed the clean
// shutdown line — which includes passing its own internal leak check.
func TestRunServesAndDrainsCleanly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer

	codeCh := make(chan int, 1)
	go func() {
		codeCh <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-customers", "500",
			"-frames", "64",
		}, &stdout, &stderr)
	}()

	// Wait for the serving line and parse the bound address from it.
	var addr string
	deadline := time.Now().Add(15 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no serving line; stdout %q stderr %q", stdout.String(), stderr.String())
		}
		for _, line := range strings.Split(stdout.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "lrukd: serving on "); ok {
				addr = strings.Fields(rest)[0]
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rec, err := cl.Get(context.Background(), 42)
	if err != nil {
		t.Fatalf("get against daemon: %v", err)
	}
	if len(rec) == 0 {
		t.Fatal("daemon returned empty record")
	}

	cancel() // the test's stand-in for SIGTERM
	select {
	case code := <-codeCh:
		if code != 0 {
			t.Fatalf("run exited %d; stderr %q", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("run did not exit after cancellation; stdout %q", stdout.String())
	}
	if !strings.Contains(stdout.String(), "lrukd: clean shutdown") {
		t.Fatalf("missing clean shutdown line; stdout %q stderr %q",
			stdout.String(), stderr.String())
	}
}

// TestRunObservabilityPlane boots the daemon with -obs-addr, drives a
// little traffic, and asserts the second listener serves /metrics with the
// expected families and /trace with JSON — then that shutdown still passes
// the internal leak check (the obs server and logger must both stop).
func TestRunObservabilityPlane(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer

	codeCh := make(chan int, 1)
	go func() {
		codeCh <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-obs-addr", "127.0.0.1:0",
			"-obs-log-interval", "50ms",
			"-customers", "300",
			"-frames", "32",
		}, &stdout, &stderr)
	}()

	var addr, obsAddr string
	deadline := time.Now().Add(15 * time.Second)
	for addr == "" || obsAddr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("missing serving lines; stdout %q stderr %q", stdout.String(), stderr.String())
		}
		for _, line := range strings.Split(stdout.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "lrukd: serving on "); ok {
				addr = strings.Fields(rest)[0]
			}
			if rest, ok := strings.CutPrefix(line, "lrukd: observability on "); ok {
				obsAddr = strings.Fields(rest)[0]
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := int64(0); i < 50; i++ {
		if _, err := cl.Get(context.Background(), i%300); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}

	resp, err := http.Get("http://" + obsAddr + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, family := range []string{
		"lruk_pool_hits_total",
		"lruk_disk_read_seconds_count",
		"lruk_policy_evictions_total",
		"lruk_server_request_seconds_count",
	} {
		if !strings.Contains(metrics, family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}

	resp, err = http.Get("http://" + obsAddr + "/trace")
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	var trace []map[string]any
	err = json.NewDecoder(resp.Body).Decode(&trace)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("trace decode: %v", err)
	}
	if len(trace) == 0 {
		t.Error("eviction trace is empty after a working set larger than the pool")
	}

	// Let at least one structured log line land on stderr.
	logDeadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(stderr.String(), "obs ts=") {
		if time.Now().After(logDeadline) {
			t.Fatalf("no structured log line; stderr %q", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	select {
	case code := <-codeCh:
		if code != 0 {
			t.Fatalf("run exited %d; stderr %q", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("run did not exit after cancellation; stdout %q", stdout.String())
	}
	if !strings.Contains(stdout.String(), "lrukd: clean shutdown") {
		t.Fatalf("missing clean shutdown line; stdout %q stderr %q",
			stdout.String(), stderr.String())
	}
}

// TestRunRejectsBadFlags exercises the usage exit path.
func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := run(context.Background(), []string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-cluster", "n0=127.0.0.1:1"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-cluster without -node-id exited %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-node-id", "ghost", "-cluster", "n0=127.0.0.1:1"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-node-id outside the spec exited %d, want 2", code)
	}
}

// TestRunClusterFlags: a node booted with -node-id/-cluster holds the
// bootstrap view (epoch 1), advertises its id on the serving line, and
// refuses keys the ring assigns elsewhere.
func TestRunClusterFlags(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer
	codeCh := make(chan int, 1)
	// A 2-node spec in which only n0 runs: n1's keys must come back MOVED.
	go func() {
		codeCh <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-customers", "300",
			"-frames", "64",
			"-node-id", "n0",
			"-cluster", "n0=127.0.0.1:0,n1=127.0.0.1:1",
		}, &stdout, &stderr)
	}()
	var addr string
	deadline := time.Now().Add(15 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no serving line; stdout %q stderr %q", stdout.String(), stderr.String())
		}
		for _, line := range strings.Split(stdout.String(), "\n") {
			if strings.HasPrefix(line, "lrukd: serving on ") {
				if !strings.Contains(line, "node=n0") {
					t.Fatalf("serving line %q lacks node=n0", line)
				}
				addr = strings.Fields(strings.TrimPrefix(line, "lrukd: serving on "))[0]
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	v, err := cl.ViewGet(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Epoch != 1 || len(v.Nodes) != 2 {
		t.Errorf("bootstrap view = %+v, want epoch 1 with 2 nodes", v)
	}
	var sawOwned, sawMoved bool
	for k := int64(0); k < 300 && !(sawOwned && sawMoved); k++ {
		_, err := cl.Get(context.Background(), k)
		switch {
		case err == nil:
			sawOwned = true
		case errors.Is(err, client.ErrMoved):
			sawMoved = true
		default:
			t.Fatalf("get %d: %v", k, err)
		}
	}
	if !sawOwned || !sawMoved {
		t.Errorf("ownership split not observed: owned=%v moved=%v", sawOwned, sawMoved)
	}
	cancel()
	select {
	case code := <-codeCh:
		if code != 0 {
			t.Fatalf("lrukd exited %d; stderr %q", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("lrukd did not drain")
	}
}
