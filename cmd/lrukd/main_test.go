package main

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server/client"
)

// syncBuffer lets the test read lrukd's output while run is still writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunServesAndDrainsCleanly is the daemon's whole life in miniature:
// boot on a free port, answer a request, receive the shutdown signal
// (modelled by ctx cancellation), and exit 0 having printed the clean
// shutdown line — which includes passing its own internal leak check.
func TestRunServesAndDrainsCleanly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer

	codeCh := make(chan int, 1)
	go func() {
		codeCh <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-customers", "500",
			"-frames", "64",
		}, &stdout, &stderr)
	}()

	// Wait for the serving line and parse the bound address from it.
	var addr string
	deadline := time.Now().Add(15 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no serving line; stdout %q stderr %q", stdout.String(), stderr.String())
		}
		for _, line := range strings.Split(stdout.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "lrukd: serving on "); ok {
				addr = strings.Fields(rest)[0]
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rec, err := cl.Get(context.Background(), 42)
	if err != nil {
		t.Fatalf("get against daemon: %v", err)
	}
	if len(rec) == 0 {
		t.Fatal("daemon returned empty record")
	}

	cancel() // the test's stand-in for SIGTERM
	select {
	case code := <-codeCh:
		if code != 0 {
			t.Fatalf("run exited %d; stderr %q", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("run did not exit after cancellation; stdout %q", stdout.String())
	}
	if !strings.Contains(stdout.String(), "lrukd: clean shutdown") {
		t.Fatalf("missing clean shutdown line; stdout %q stderr %q",
			stdout.String(), stderr.String())
	}
}

// TestRunRejectsBadFlags exercises the usage exit path.
func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := run(context.Background(), []string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}
