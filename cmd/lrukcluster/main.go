// Command lrukcluster is the cluster-side companion to lrukd: it launches
// a local N-node cluster in one process, drives membership changes with
// the crash-safe rebalance coordinator, and inspects the views the nodes
// hold.
//
// Usage:
//
//	lrukcluster serve -nodes 3 -customers 10000 -frames 404
//	lrukcluster view   -cluster "n0=127.0.0.1:4980,n1=127.0.0.1:4981,..."
//	lrukcluster remove -cluster "..." -node n2
//	lrukcluster add    -cluster "..." -node n3 -addr 127.0.0.1:4983
//
// serve boots N nodes on free loopback ports, installs a shared epoch-1
// view once every port is known, prints one line per node
//
//	lrukcluster: node n0 serving on <host:port>
//
// followed by the machine-readable membership line
//
//	lrukcluster: cluster n0=<addr>,n1=<addr>,...
//
// (which later lrukcluster/lrukload invocations take as -cluster), then
// serves until SIGTERM/SIGINT and drains every node, printing
// "lrukcluster: clean shutdown" on a leak-free exit. It is the quick way
// to get a whole cluster for experiments; for kill-a-node testing use one
// lrukd process per node (scripts/cluster_smoke.sh) so nodes die
// independently.
//
// remove and add fetch the authoritative view from the first reachable
// spec'd node, apply the membership edit with the epoch bumped, and drive
// the handoff: flip the shedding nodes, drain them with a flush barrier,
// copy the moving keys to their new owners, make the copies durable, then
// flip the rest of the cluster (DESIGN.md §16). The key population is
// taken from a SCAN of the contacted node; -keys overrides it.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/bufferpool"
	"repro/internal/cluster"
	"repro/internal/db"
	"repro/internal/leakcheck"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/server/wire"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "lrukcluster: usage: lrukcluster <serve|view|add|remove> [flags]")
		return 2
	}
	switch args[0] {
	case "serve":
		return runServe(ctx, args[1:], stdout, stderr)
	case "view":
		return runView(ctx, args[1:], stdout, stderr)
	case "add", "remove":
		return runRebalance(ctx, args[0], args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "lrukcluster: unknown subcommand %q (want serve, view, add, or remove)\n", args[0])
		return 2
	}
}

// runServe boots an N-node cluster in-process and serves until the
// context is cancelled (signal), then drains every node.
func runServe(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lrukcluster serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nodes     = fs.Int("nodes", 3, "nodes to launch")
		customers = fs.Int("customers", 10000, "customer records each node loads")
		frames    = fs.Int("frames", 404, "buffer pool size in pages, per node")
		k         = fs.Int("k", 2, "LRU-K history depth")
		workers   = fs.Int("workers", 0, "worker pool size per node (0 = GOMAXPROCS)")
		queue     = fs.Int("queue", 0, "admission queue depth per node (0 = 4x workers)")
		drain     = fs.Duration("drain", 5*time.Second, "graceful drain window per node on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *nodes < 1 {
		fmt.Fprintln(stderr, "lrukcluster: -nodes must be at least 1")
		return 2
	}
	baseline := runtime.NumGoroutine()

	type member struct {
		id  string
		db  *db.DB
		srv *server.Server
	}
	members := make([]member, 0, *nodes)
	shutdown := func() int {
		code := 0
		for i := len(members) - 1; i >= 0; i-- {
			m := members[i]
			if err := m.srv.Close(); err != nil {
				fmt.Fprintf(stderr, "lrukcluster: %s close: %v\n", m.id, err)
				code = 1
			}
			if err := m.db.Close(); err != nil {
				fmt.Fprintf(stderr, "lrukcluster: %s db close: %v\n", m.id, err)
				code = 1
			}
		}
		return code
	}

	for i := 0; i < *nodes; i++ {
		id := fmt.Sprintf("n%d", i)
		database, err := db.Open(db.Config{
			Frames: *frames,
			K:      *k,
			DiskRetry: bufferpool.RetryConfig{
				Attempts:  3,
				BaseDelay: 500 * time.Microsecond,
				MaxDelay:  5 * time.Millisecond,
				Seed:      uint64(os.Getpid() + i),
			},
			DiskBreaker: bufferpool.BreakerConfig{
				Threshold: 8,
				Cooldown:  250 * time.Millisecond,
				Probes:    2,
			},
		})
		if err != nil {
			fmt.Fprintln(stderr, "lrukcluster:", err)
			shutdown()
			return 1
		}
		if err := database.LoadCustomers(*customers); err != nil {
			fmt.Fprintln(stderr, "lrukcluster:", err)
			database.Close()
			shutdown()
			return 1
		}
		srv := server.New(database, server.Config{
			Addr:         "127.0.0.1:0",
			Workers:      *workers,
			QueueDepth:   *queue,
			DrainTimeout: *drain,
			NodeID:       id,
		})
		if err := srv.Start(); err != nil {
			fmt.Fprintln(stderr, "lrukcluster:", err)
			database.Close()
			shutdown()
			return 1
		}
		members = append(members, member{id: id, db: database, srv: srv})
	}

	// Every port is known only now, so the shared epoch-1 view is
	// installed after the fact rather than passed at boot.
	view := wire.View{Epoch: 1}
	for _, m := range members {
		view.Nodes = append(view.Nodes, wire.NodeAddr{ID: m.id, Addr: m.srv.Addr().String()})
	}
	for _, m := range members {
		cl, err := client.Dial(m.srv.Addr().String())
		if err == nil {
			_, err = cl.ViewSet(ctx, view)
			cl.Close()
		}
		if err != nil {
			fmt.Fprintf(stderr, "lrukcluster: installing view on %s: %v\n", m.id, err)
			shutdown()
			return 1
		}
	}
	for _, m := range members {
		fmt.Fprintf(stdout, "lrukcluster: node %s serving on %s\n", m.id, m.srv.Addr())
	}
	fmt.Fprintf(stdout, "lrukcluster: cluster %s\n", cluster.FormatSpec(view))

	<-ctx.Done()
	fmt.Fprintln(stdout, "lrukcluster: draining")
	code := shutdown()
	if err := leakcheck.Wait(baseline, 3*time.Second); err != nil {
		fmt.Fprintln(stderr, "lrukcluster:", err)
		code = 1
	}
	if code == 0 {
		fmt.Fprintln(stdout, "lrukcluster: clean shutdown")
	}
	return code
}

// authoritativeView returns the newest view held by any reachable node of
// the spec, along with that node's address and record count.
func authoritativeView(ctx context.Context, spec wire.View, opts client.Options) (wire.View, int, error) {
	var lastErr error
	for _, n := range spec.Nodes {
		cl, err := client.DialOptions(n.Addr, opts)
		if err != nil {
			lastErr = err
			continue
		}
		v, err := cl.ViewGet(ctx)
		if err != nil {
			cl.Close()
			lastErr = err
			continue
		}
		keys, err := cl.Scan(ctx)
		cl.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if v.Epoch == 0 {
			return wire.View{}, 0, fmt.Errorf("node %s at %s is standalone (no view installed)", n.ID, n.Addr)
		}
		return v, keys, nil
	}
	return wire.View{}, 0, fmt.Errorf("no spec'd node reachable: %w", lastErr)
}

// runView prints the authoritative view and each member's held epoch.
func runView(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lrukcluster view", flag.ContinueOnError)
	fs.SetOutput(stderr)
	clusterFl := fs.String("cluster", "", "cluster spec \"id=addr,...\"")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	spec, err := cluster.ParseSpec(*clusterFl)
	if err != nil {
		fmt.Fprintln(stderr, "lrukcluster:", err)
		return 2
	}
	v, keys, err := authoritativeView(ctx, spec, client.Options{})
	if err != nil {
		fmt.Fprintln(stderr, "lrukcluster:", err)
		return 1
	}
	fmt.Fprintf(stdout, "lrukcluster: epoch=%d keys=%d cluster %s\n", v.Epoch, keys, cluster.FormatSpec(v))
	for _, n := range v.Nodes {
		cl, err := client.Dial(n.Addr)
		if err != nil {
			fmt.Fprintf(stdout, "lrukcluster:   %s %s unreachable: %v\n", n.ID, n.Addr, err)
			continue
		}
		held, err := cl.ViewGet(ctx)
		cl.Close()
		if err != nil {
			fmt.Fprintf(stdout, "lrukcluster:   %s %s error: %v\n", n.ID, n.Addr, err)
			continue
		}
		fmt.Fprintf(stdout, "lrukcluster:   %s %s epoch=%d\n", n.ID, n.Addr, held.Epoch)
	}
	return 0
}

// runRebalance drives an add or remove: authoritative view in, membership
// edit, crash-safe handoff out.
func runRebalance(ctx context.Context, verb string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lrukcluster "+verb, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		clusterFl = fs.String("cluster", "", "cluster spec \"id=addr,...\" of current members")
		nodeID    = fs.String("node", "", "node id to "+verb)
		nodeAddr  = fs.String("addr", "", "joining node's address (add only; it must already be serving)")
		keysFl    = fs.Int("keys", 0, "customer key population (0 = take it from a SCAN)")
		batch     = fs.Int("batch", 0, "handoff batch size in keys (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *nodeID == "" {
		fmt.Fprintln(stderr, "lrukcluster: -node is required")
		return 2
	}
	spec, err := cluster.ParseSpec(*clusterFl)
	if err != nil {
		fmt.Fprintln(stderr, "lrukcluster:", err)
		return 2
	}
	cur, keys, err := authoritativeView(ctx, spec, client.Options{})
	if err != nil {
		fmt.Fprintln(stderr, "lrukcluster:", err)
		return 1
	}
	if *keysFl > 0 {
		keys = *keysFl
	}

	var next wire.View
	switch verb {
	case "remove":
		next, err = cluster.Without(cur, *nodeID)
	case "add":
		if *nodeAddr == "" {
			fmt.Fprintln(stderr, "lrukcluster: add requires -addr")
			return 2
		}
		next, err = cluster.With(cur, *nodeID, *nodeAddr)
	}
	if err != nil {
		fmt.Fprintln(stderr, "lrukcluster:", err)
		return 1
	}

	fmt.Fprintf(stdout, "lrukcluster: %s %s: epoch %d -> %d over %d keys\n",
		verb, *nodeID, cur.Epoch, next.Epoch, keys)
	err = cluster.Rebalance(ctx, cur, next, cluster.RebalanceConfig{
		Keys:      int64(keys),
		BatchSize: *batch,
		Log: func(format string, a ...any) {
			fmt.Fprintf(stdout, "lrukcluster: "+format+"\n", a...)
		},
	})
	if err != nil {
		fmt.Fprintln(stderr, "lrukcluster:", err)
		return 1
	}
	fmt.Fprintf(stdout, "lrukcluster: %s complete; cluster %s\n", verb, cluster.FormatSpec(next))
	return 0
}
