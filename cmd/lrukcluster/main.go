// Command lrukcluster is the cluster-side companion to lrukd: it launches
// a local N-node cluster in one process, drives membership changes with
// the crash-safe rebalance coordinator, and inspects the views the nodes
// hold.
//
// Usage:
//
//	lrukcluster serve -nodes 3 -customers 10000 -frames 404
//	lrukcluster view   -cluster "n0=127.0.0.1:4980,n1=127.0.0.1:4981,..."
//	lrukcluster remove -cluster "..." -node n2
//	lrukcluster add    -cluster "..." -node n3 -addr 127.0.0.1:4983
//
// serve boots N nodes on free loopback ports, installs a shared epoch-1
// view once every port is known, prints one line per node
//
//	lrukcluster: node n0 serving on <host:port>
//
// followed by the machine-readable membership line
//
//	lrukcluster: cluster n0=<addr>,n1=<addr>,...
//
// (which later lrukcluster/lrukload invocations take as -cluster), then
// serves until SIGTERM/SIGINT and drains every node, printing
// "lrukcluster: clean shutdown" on a leak-free exit. It is the quick way
// to get a whole cluster for experiments; for kill-a-node testing use one
// lrukd process per node (scripts/cluster_smoke.sh) so nodes die
// independently.
//
// remove and add fetch the authoritative view from the first reachable
// spec'd node, apply the membership edit with the epoch bumped, and drive
// the handoff: flip the shedding nodes, drain them with a flush barrier,
// copy the moving keys to their new owners, make the copies durable, then
// flip the rest of the cluster (DESIGN.md §16). The key population is
// taken from a SCAN of the contacted node; -keys overrides it. Every
// admin request of the run is issued under one sampled trace; the run
// prints "rebalance trace=<id>" so the handoff can be reassembled with
// the trace subcommand afterwards.
//
//	lrukcluster trace -obs "n0=127.0.0.1:9980,n1=..." <trace-id>
//
// trace fetches /spans?trace=<id> from every node's observability
// listener (the -obs spec maps node ids to obs addresses, same syntax as
// -cluster), stitches the spans into a tree by parent span id, and prints
// a per-node waterfall followed by one summary line:
//
//	lrukcluster: trace <id> spans=N nodes=M root_ns=... nest_violations=K
//
// Spans whose parent is not in the collected set (the client's root, or a
// MOVED bounce's origin) print as roots; nest_violations counts child
// spans whose interval escapes their parent's, which on a single host
// should be zero.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/bufferpool"
	"repro/internal/cluster"
	"repro/internal/db"
	"repro/internal/leakcheck"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/server/wire"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "lrukcluster: usage: lrukcluster <serve|view|add|remove|trace> [flags]")
		return 2
	}
	switch args[0] {
	case "serve":
		return runServe(ctx, args[1:], stdout, stderr)
	case "view":
		return runView(ctx, args[1:], stdout, stderr)
	case "add", "remove":
		return runRebalance(ctx, args[0], args[1:], stdout, stderr)
	case "trace":
		return runTrace(ctx, args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "lrukcluster: unknown subcommand %q (want serve, view, add, remove, or trace)\n", args[0])
		return 2
	}
}

// runServe boots an N-node cluster in-process and serves until the
// context is cancelled (signal), then drains every node.
func runServe(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lrukcluster serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nodes     = fs.Int("nodes", 3, "nodes to launch")
		customers = fs.Int("customers", 10000, "customer records each node loads")
		frames    = fs.Int("frames", 404, "buffer pool size in pages, per node")
		k         = fs.Int("k", 2, "LRU-K history depth")
		workers   = fs.Int("workers", 0, "worker pool size per node (0 = GOMAXPROCS)")
		queue     = fs.Int("queue", 0, "admission queue depth per node (0 = 4x workers)")
		drain     = fs.Duration("drain", 5*time.Second, "graceful drain window per node on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *nodes < 1 {
		fmt.Fprintln(stderr, "lrukcluster: -nodes must be at least 1")
		return 2
	}
	baseline := runtime.NumGoroutine()

	type member struct {
		id  string
		db  *db.DB
		srv *server.Server
	}
	members := make([]member, 0, *nodes)
	shutdown := func() int {
		code := 0
		for i := len(members) - 1; i >= 0; i-- {
			m := members[i]
			if err := m.srv.Close(); err != nil {
				fmt.Fprintf(stderr, "lrukcluster: %s close: %v\n", m.id, err)
				code = 1
			}
			if err := m.db.Close(); err != nil {
				fmt.Fprintf(stderr, "lrukcluster: %s db close: %v\n", m.id, err)
				code = 1
			}
		}
		return code
	}

	for i := 0; i < *nodes; i++ {
		id := fmt.Sprintf("n%d", i)
		database, err := db.Open(db.Config{
			Frames: *frames,
			K:      *k,
			DiskRetry: bufferpool.RetryConfig{
				Attempts:  3,
				BaseDelay: 500 * time.Microsecond,
				MaxDelay:  5 * time.Millisecond,
				Seed:      uint64(os.Getpid() + i),
			},
			DiskBreaker: bufferpool.BreakerConfig{
				Threshold: 8,
				Cooldown:  250 * time.Millisecond,
				Probes:    2,
			},
		})
		if err != nil {
			fmt.Fprintln(stderr, "lrukcluster:", err)
			shutdown()
			return 1
		}
		if err := database.LoadCustomers(*customers); err != nil {
			fmt.Fprintln(stderr, "lrukcluster:", err)
			database.Close()
			shutdown()
			return 1
		}
		srv := server.New(database, server.Config{
			Addr:         "127.0.0.1:0",
			Workers:      *workers,
			QueueDepth:   *queue,
			DrainTimeout: *drain,
			NodeID:       id,
		})
		if err := srv.Start(); err != nil {
			fmt.Fprintln(stderr, "lrukcluster:", err)
			database.Close()
			shutdown()
			return 1
		}
		members = append(members, member{id: id, db: database, srv: srv})
	}

	// Every port is known only now, so the shared epoch-1 view is
	// installed after the fact rather than passed at boot.
	view := wire.View{Epoch: 1}
	for _, m := range members {
		view.Nodes = append(view.Nodes, wire.NodeAddr{ID: m.id, Addr: m.srv.Addr().String()})
	}
	for _, m := range members {
		cl, err := client.Dial(m.srv.Addr().String())
		if err == nil {
			_, err = cl.ViewSet(ctx, view)
			cl.Close()
		}
		if err != nil {
			fmt.Fprintf(stderr, "lrukcluster: installing view on %s: %v\n", m.id, err)
			shutdown()
			return 1
		}
	}
	for _, m := range members {
		fmt.Fprintf(stdout, "lrukcluster: node %s serving on %s\n", m.id, m.srv.Addr())
	}
	fmt.Fprintf(stdout, "lrukcluster: cluster %s\n", cluster.FormatSpec(view))

	<-ctx.Done()
	fmt.Fprintln(stdout, "lrukcluster: draining")
	code := shutdown()
	if err := leakcheck.Wait(baseline, 3*time.Second); err != nil {
		fmt.Fprintln(stderr, "lrukcluster:", err)
		code = 1
	}
	if code == 0 {
		fmt.Fprintln(stdout, "lrukcluster: clean shutdown")
	}
	return code
}

// authoritativeView returns the newest view held by any reachable node of
// the spec, along with that node's address and record count.
func authoritativeView(ctx context.Context, spec wire.View, opts client.Options) (wire.View, int, error) {
	var lastErr error
	for _, n := range spec.Nodes {
		cl, err := client.DialOptions(n.Addr, opts)
		if err != nil {
			lastErr = err
			continue
		}
		v, err := cl.ViewGet(ctx)
		if err != nil {
			cl.Close()
			lastErr = err
			continue
		}
		keys, err := cl.Scan(ctx)
		cl.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if v.Epoch == 0 {
			return wire.View{}, 0, fmt.Errorf("node %s at %s is standalone (no view installed)", n.ID, n.Addr)
		}
		return v, keys, nil
	}
	return wire.View{}, 0, fmt.Errorf("no spec'd node reachable: %w", lastErr)
}

// runView prints the authoritative view and each member's held epoch.
func runView(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lrukcluster view", flag.ContinueOnError)
	fs.SetOutput(stderr)
	clusterFl := fs.String("cluster", "", "cluster spec \"id=addr,...\"")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	spec, err := cluster.ParseSpec(*clusterFl)
	if err != nil {
		fmt.Fprintln(stderr, "lrukcluster:", err)
		return 2
	}
	v, keys, err := authoritativeView(ctx, spec, client.Options{})
	if err != nil {
		fmt.Fprintln(stderr, "lrukcluster:", err)
		return 1
	}
	fmt.Fprintf(stdout, "lrukcluster: epoch=%d keys=%d cluster %s\n", v.Epoch, keys, cluster.FormatSpec(v))
	for _, n := range v.Nodes {
		cl, err := client.Dial(n.Addr)
		if err != nil {
			fmt.Fprintf(stdout, "lrukcluster:   %s %s unreachable: %v\n", n.ID, n.Addr, err)
			continue
		}
		held, err := cl.ViewGet(ctx)
		cl.Close()
		if err != nil {
			fmt.Fprintf(stdout, "lrukcluster:   %s %s error: %v\n", n.ID, n.Addr, err)
			continue
		}
		fmt.Fprintf(stdout, "lrukcluster:   %s %s epoch=%d\n", n.ID, n.Addr, held.Epoch)
	}
	return 0
}

// runTrace assembles one distributed trace: fetch the trace's spans from
// every node's /spans endpoint, stitch them into a tree by parent span
// id, and print a waterfall plus a summary line.
func runTrace(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lrukcluster trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	obsFl := fs.String("obs", "", "observability spec \"id=host:port,...\" mapping node ids to their -obs-addr listeners")
	timeout := fs.Duration("timeout", 5*time.Second, "per-node fetch timeout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *obsFl == "" || fs.NArg() != 1 {
		fmt.Fprintln(stderr, "lrukcluster: usage: lrukcluster trace -obs \"id=host:port,...\" <trace-id>")
		return 2
	}
	traceID, err := obs.ParseHex64(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "lrukcluster:", err)
		return 2
	}
	// The -obs spec reuses the cluster spec syntax; only the ids and
	// addresses matter, not the epoch.
	spec, err := cluster.ParseSpec(*obsFl)
	if err != nil {
		fmt.Fprintln(stderr, "lrukcluster:", err)
		return 2
	}

	spans, unreachable := fetchSpans(ctx, spec.Nodes, traceID, *timeout, stderr)
	if unreachable == len(spec.Nodes) {
		fmt.Fprintln(stderr, "lrukcluster: no obs endpoint reachable")
		return 1
	}
	if len(spans) == 0 {
		fmt.Fprintf(stderr, "lrukcluster: trace %s: no spans found (expired from the ring, or never sampled)\n", traceID)
		return 1
	}
	printTrace(stdout, traceID, spans)
	return 0
}

// fetchSpans collects trace traceID's spans from each node's /spans
// endpoint, tagging every span with the node it came from when the
// recorder left the field empty. Unreachable nodes are reported and
// skipped — a partial trace still prints.
func fetchSpans(ctx context.Context, nodes []wire.NodeAddr, traceID obs.Hex64,
	timeout time.Duration, stderr io.Writer) (spans []obs.SpanRecord, unreachable int) {
	for _, n := range nodes {
		url := fmt.Sprintf("http://%s/spans?trace=%s", n.Addr, traceID)
		rctx, cancel := context.WithTimeout(ctx, timeout)
		req, err := http.NewRequestWithContext(rctx, http.MethodGet, url, nil)
		var resp *http.Response
		if err == nil {
			resp, err = http.DefaultClient.Do(req)
		}
		if err != nil {
			cancel()
			fmt.Fprintf(stderr, "lrukcluster: %s: %v\n", n.ID, err)
			unreachable++
			continue
		}
		var got struct {
			Node  string           `json:"node"`
			Spans []obs.SpanRecord `json:"spans"`
		}
		err = json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		cancel()
		if err != nil {
			fmt.Fprintf(stderr, "lrukcluster: %s: decoding /spans: %v\n", n.ID, err)
			unreachable++
			continue
		}
		node := got.Node
		if node == "" {
			node = n.ID
		}
		for i := range got.Spans {
			if got.Spans[i].Node == "" {
				got.Spans[i].Node = node
			}
		}
		spans = append(spans, got.Spans...)
	}
	return spans, unreachable
}

// printTrace stitches the spans by parent span id and renders the
// waterfall: children indented under their parent, each line showing the
// node, span kind, offset from the trace's first span, and duration.
// Spans whose parent was not collected (the client's un-recorded root, a
// cross-node hop) are roots. The closing summary counts nest violations —
// children whose interval escapes their parent's.
func printTrace(stdout io.Writer, traceID obs.Hex64, spans []obs.SpanRecord) {
	byID := make(map[obs.Hex64]obs.SpanRecord, len(spans))
	children := make(map[obs.Hex64][]obs.SpanRecord)
	nodes := make(map[string]bool)
	var roots []obs.SpanRecord
	base := spans[0].Start
	for _, s := range spans {
		byID[s.Span] = s
		nodes[s.Node] = true
		if s.Start < base {
			base = s.Start
		}
	}
	for _, s := range spans {
		if _, ok := byID[s.Parent]; ok && s.Parent != s.Span {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	order := func(list []obs.SpanRecord) {
		sort.Slice(list, func(i, j int) bool { return list[i].Start < list[j].Start })
	}
	order(roots)
	for id := range children {
		order(children[id])
	}

	// A bulk operation (a traced scan, a rebalance copy) fans out
	// thousands of sibling spans; the waterfall prints the first few per
	// parent and elides the rest, while the counts below cover everything.
	const maxChildren = 16
	violations := 0
	var rootNS int64
	var walk func(s obs.SpanRecord, depth int)
	walk = func(s obs.SpanRecord, depth int) {
		annot := ""
		if s.Annot != 0 || s.Kind == obs.SpanRebalancePhase {
			annot = fmt.Sprintf(" annot=%d", s.Annot)
		}
		fmt.Fprintf(stdout, "lrukcluster:   %s[%s] %-15s +%.3fms %.3fms%s\n",
			strings.Repeat("  ", depth), s.Node, s.Kind,
			float64(s.Start-base)/1e6, float64(s.Dur)/1e6, annot)
		for i, c := range children[s.Span] {
			if c.Start < s.Start-nestSlopNS || c.Start+c.Dur > s.Start+s.Dur+nestSlopNS {
				violations++
			}
			if i < maxChildren {
				walk(c, depth+1)
			} else {
				countNested(c, children, &violations)
			}
		}
		if n := len(children[s.Span]); n > maxChildren {
			fmt.Fprintf(stdout, "lrukcluster:   %s  ... %d more children elided\n",
				strings.Repeat("  ", depth), n-maxChildren)
		}
	}
	for _, r := range roots {
		if r.Dur > rootNS {
			rootNS = r.Dur
		}
		walk(r, 0)
	}
	fmt.Fprintf(stdout, "lrukcluster: trace %s spans=%d nodes=%d root_ns=%d nest_violations=%d\n",
		traceID, len(spans), len(nodes), rootNS, violations)
}

// nestSlopNS is the tolerance the nesting check allows before calling a
// child's escape from its parent's interval a violation. Span starts are
// wall-clock stamps while durations are monotonic elapsed time, so two
// reads of a slewing clock can disagree by a little even when the calls
// nested perfectly.
const nestSlopNS = 100_000

// countNested tallies nesting violations in an elided subtree without
// printing it, so the summary line still covers every span.
func countNested(s obs.SpanRecord, children map[obs.Hex64][]obs.SpanRecord, violations *int) {
	for _, c := range children[s.Span] {
		if c.Start < s.Start-nestSlopNS || c.Start+c.Dur > s.Start+s.Dur+nestSlopNS {
			*violations++
		}
		countNested(c, children, violations)
	}
}

// runRebalance drives an add or remove: authoritative view in, membership
// edit, crash-safe handoff out.
func runRebalance(ctx context.Context, verb string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lrukcluster "+verb, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		clusterFl = fs.String("cluster", "", "cluster spec \"id=addr,...\" of current members")
		nodeID    = fs.String("node", "", "node id to "+verb)
		nodeAddr  = fs.String("addr", "", "joining node's address (add only; it must already be serving)")
		keysFl    = fs.Int("keys", 0, "customer key population (0 = take it from a SCAN)")
		batch     = fs.Int("batch", 0, "handoff batch size in keys (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *nodeID == "" {
		fmt.Fprintln(stderr, "lrukcluster: -node is required")
		return 2
	}
	spec, err := cluster.ParseSpec(*clusterFl)
	if err != nil {
		fmt.Fprintln(stderr, "lrukcluster:", err)
		return 2
	}
	cur, keys, err := authoritativeView(ctx, spec, client.Options{})
	if err != nil {
		fmt.Fprintln(stderr, "lrukcluster:", err)
		return 1
	}
	if *keysFl > 0 {
		keys = *keysFl
	}

	var next wire.View
	switch verb {
	case "remove":
		next, err = cluster.Without(cur, *nodeID)
	case "add":
		if *nodeAddr == "" {
			fmt.Fprintln(stderr, "lrukcluster: add requires -addr")
			return 2
		}
		next, err = cluster.With(cur, *nodeID, *nodeAddr)
	}
	if err != nil {
		fmt.Fprintln(stderr, "lrukcluster:", err)
		return 1
	}

	fmt.Fprintf(stdout, "lrukcluster: %s %s: epoch %d -> %d over %d keys\n",
		verb, *nodeID, cur.Epoch, next.Epoch, keys)
	// The whole handoff runs under one sampled trace: every traced node
	// records the admin requests it served as spans of this trace, so the
	// printed id feeds straight into `lrukcluster trace`. The coordinator's
	// own recorder exists to mint ids and hold the phase spans; the
	// registry collects the phase timings printed after the run.
	rec := obs.NewSpanRecorder("coordinator", 64)
	reg := obs.NewRegistry()
	trace := obs.TraceContext{TraceID: rec.NewTraceID(), SpanID: rec.NewSpanID(), Sampled: true}
	fmt.Fprintf(stdout, "lrukcluster: rebalance trace=%016x\n", trace.TraceID)
	err = cluster.Rebalance(ctx, cur, next, cluster.RebalanceConfig{
		Keys:      int64(keys),
		BatchSize: *batch,
		Obs:       reg,
		Spans:     rec,
		Trace:     trace,
		Log: func(format string, a ...any) {
			fmt.Fprintf(stdout, "lrukcluster: "+format+"\n", a...)
		},
	})
	if err != nil {
		fmt.Fprintln(stderr, "lrukcluster:", err)
		return 1
	}
	for _, span := range rec.TraceSpans(trace.TraceID) {
		fmt.Fprintf(stdout, "lrukcluster: phase %s %.3fms\n",
			cluster.RebalancePhaseName(int(span.Annot)), float64(span.Dur)/1e6)
	}
	fmt.Fprintf(stdout, "lrukcluster: %s complete; cluster %s\n", verb, cluster.FormatSpec(next))
	return 0
}
