package main

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
)

// syncBuffer lets the test read serve's output while run is still writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeRemoveAndDrain is the tool's whole life: serve boots a 3-node
// cluster and prints the membership line, a cluster client works against
// it, the remove subcommand rebalances a node away, view reflects the new
// epoch, and cancellation drains everything leak-free.
func TestServeRemoveAndDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer
	codeCh := make(chan int, 1)
	go func() {
		codeCh <- run(ctx, []string{"serve",
			"-nodes", "3", "-customers", "400", "-frames", "64",
		}, &stdout, &stderr)
	}()

	// Wait for the membership line and take its spec.
	var spec string
	deadline := time.Now().Add(20 * time.Second)
	for spec == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no cluster line; stdout %q stderr %q", stdout.String(), stderr.String())
		}
		for _, line := range strings.Split(stdout.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "lrukcluster: cluster "); ok {
				spec = rest
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	boot, err := cluster.ParseSpec(spec)
	if err != nil {
		t.Fatalf("spec line %q: %v", spec, err)
	}
	if len(boot.Nodes) != 3 {
		t.Fatalf("spec %q names %d nodes, want 3", spec, len(boot.Nodes))
	}
	cc, err := cluster.New(cluster.Config{View: boot})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	reqCtx := context.Background()
	for k := int64(0); k < 400; k += 13 {
		if _, err := cc.Get(reqCtx, k); err != nil {
			t.Fatalf("get key %d: %v", k, err)
		}
	}

	// Rebalance n2 away through the subcommand.
	var rmOut, rmErr syncBuffer
	if code := run(reqCtx, []string{"remove", "-cluster", spec, "-node", "n2"}, &rmOut, &rmErr); code != 0 {
		t.Fatalf("remove exited %d; stdout %q stderr %q", code, rmOut.String(), rmErr.String())
	}
	if !strings.Contains(rmOut.String(), "remove complete") {
		t.Errorf("remove output %q lacks completion line", rmOut.String())
	}

	// view sees the bumped epoch from the survivors.
	var vOut, vErr syncBuffer
	if code := run(reqCtx, []string{"view", "-cluster", spec}, &vOut, &vErr); code != 0 {
		t.Fatalf("view exited %d; stderr %q", code, vErr.String())
	}
	if !strings.Contains(vOut.String(), "epoch=2") {
		t.Errorf("view output %q lacks epoch=2", vOut.String())
	}

	// The whole keyspace still serves through the shrunk cluster.
	for k := int64(0); k < 400; k += 13 {
		if _, err := cc.Get(reqCtx, k); err != nil {
			t.Fatalf("get key %d after remove: %v", k, err)
		}
	}

	cancel()
	select {
	case code := <-codeCh:
		if code != 0 {
			t.Fatalf("serve exited %d; stderr %q", code, stderr.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("serve did not exit; stdout %q stderr %q", stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "lrukcluster: clean shutdown") {
		t.Errorf("missing clean shutdown line; stdout %q stderr %q", stdout.String(), stderr.String())
	}
}

func TestBadSubcommand(t *testing.T) {
	var out, errB syncBuffer
	if code := run(context.Background(), []string{"bogus"}, &out, &errB); code != 2 {
		t.Errorf("bogus subcommand exited %d, want 2", code)
	}
	if code := run(context.Background(), nil, &out, &errB); code != 2 {
		t.Errorf("no subcommand exited %d, want 2", code)
	}
}
