package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/trace"
)

func TestRunGeneratedWorkload(t *testing.T) {
	var out bytes.Buffer
	err := run(&out, "twopool", "", "lru-1,lru-2,a0", "60,100", 20000, 4000, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"LRU-1", "LRU-2", "A0", "60", "100"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunTraceFile(t *testing.T) {
	refs := make([]policy.PageID, 5000)
	for i := range refs {
		refs[i] = policy.PageID(i % 37)
	}
	path := filepath.Join(t.TempDir(), "t.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinary(f, refs); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out bytes.Buffer
	if err := run(&out, "", path, "lru-2,opt", "40", 0, 1000, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	// With 37 pages cycling, 40 frames, and the cold start excluded by the
	// warm-up, every measured reference hits.
	if !strings.Contains(out.String(), "1.000") {
		t.Errorf("cyclic trace with ample buffer should hit 1.000:\n%s", out.String())
	}
}

func TestRunCRPOptionsApply(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "twopool", "", "lru-2", "100", 10000, 2000, 1, 4, 1000); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "LRU-2") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "", "", "lru-1", "10", 100, 0, 1, 0, 0); err == nil {
		t.Error("neither workload nor trace rejected... accepted")
	}
	if err := run(&out, "twopool", "x.trc", "lru-1", "10", 100, 0, 1, 0, 0); err == nil {
		t.Error("both workload and trace accepted")
	}
	if err := run(&out, "bogus", "", "lru-1", "10", 100, 0, 1, 0, 0); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run(&out, "twopool", "", "nosuch", "10", 100, 0, 1, 0, 0); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run(&out, "twopool", "", "lru-1", "ten", 100, 0, 1, 0, 0); err == nil {
		t.Error("garbage buffers accepted")
	}
	if err := run(&out, "twopool", "", "lru-1", "-5", 100, 0, 1, 0, 0); err == nil {
		t.Error("negative buffer accepted")
	}
	if err := run(&out, "", "/does/not/exist.trc", "lru-1", "10", 100, 0, 1, 0, 0); err == nil {
		t.Error("missing trace file accepted")
	}
}

func TestFactoryFor(t *testing.T) {
	if _, err := factoryFor("lru-0", core.Options{}); err == nil {
		t.Error("lru-0 accepted")
	}
	for _, name := range []string{"lru", "lru-1", "lru-4", "lfu", "arc"} {
		if _, err := factoryFor(name, core.Options{}); err != nil {
			t.Errorf("factoryFor(%q): %v", name, err)
		}
	}
}
