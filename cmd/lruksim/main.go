// Command lruksim is the general buffer-replacement simulator: it replays
// a workload (generated or from a trace file) through one or more policies
// across a sweep of buffer sizes and prints the hit-ratio table.
//
// Usage:
//
//	lruksim -workload twopool -policies lru-1,lru-2,lru-3,a0 -buffers 60,100,200
//	lruksim -trace oltp.trc -policies lru-1,lru-2,lfu,2q,arc -buffers 100,1000
//	lruksim -workload zipf -policies lru-2 -buffers 100 -crp 4 -rip 2000
//
// Policies: lru-1 (lru), lru-K for any K, lfu, fifo, mru, clock, gclock,
// 2q, arc, lrd, random, a0 (needs a generated stationary workload), b0/opt.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		wl       = flag.String("workload", "", "generated workload: twopool, zipf, oltp, scan, hotspot")
		traceIn  = flag.String("trace", "", "binary trace file to replay instead of a generated workload")
		policies = flag.String("policies", "lru-1,lru-2", "comma-separated policy list")
		buffers  = flag.String("buffers", "100", "comma-separated buffer sizes")
		refs     = flag.Int("refs", 200000, "references to generate (generated workloads)")
		warmup   = flag.Int("warmup", 0, "warm-up references excluded from measurement (default refs/5)")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		crp      = flag.Int64("crp", 0, "Correlated Reference Period for lru-K policies, in references")
		rip      = flag.Int64("rip", 0, "Retained Information Period for lru-K policies (0 = unlimited)")
	)
	flag.Parse()
	if err := run(os.Stdout, *wl, *traceIn, *policies, *buffers, *refs, *warmup, *seed, *crp, *rip); err != nil {
		fmt.Fprintln(os.Stderr, "lruksim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, wl, traceIn, policies, buffers string, refs, warmup int, seed uint64, crp, rip int64) error {
	if (wl == "") == (traceIn == "") {
		return fmt.Errorf("exactly one of -workload and -trace is required")
	}
	if warmup == 0 {
		warmup = refs / 5
	}

	var exp *sim.Experiment
	switch {
	case traceIn != "":
		f, err := os.Open(traceIn)
		if err != nil {
			return err
		}
		refsSlice, err := trace.ReadBinary(f)
		f.Close()
		if err != nil {
			return err
		}
		if warmup >= len(refsSlice) {
			warmup = len(refsSlice) / 5
		}
		exp = sim.NewTraceExperiment(traceIn, refsSlice, warmup)
	default:
		g, err := makeGenerator(wl, seed)
		if err != nil {
			return err
		}
		exp = sim.NewExperiment(wl, g, warmup, refs-warmup)
	}

	var names []string
	var factories []sim.Factory
	opts := core.Options{
		CorrelatedReferencePeriod: policy.Tick(crp),
		RetainedInformationPeriod: policy.Tick(rip),
	}
	for _, name := range strings.Split(policies, ",") {
		name = strings.TrimSpace(name)
		f, err := factoryFor(name, opts)
		if err != nil {
			return err
		}
		factories = append(factories, f)
		names = append(names, strings.ToUpper(name))
	}

	sizes, err := parseInts(buffers)
	if err != nil {
		return fmt.Errorf("parsing -buffers: %w", err)
	}

	t := &sim.Table{
		Title:    "lruksim",
		Note:     fmt.Sprintf("%s, %d refs, %d warm-up", exp.Name, len(exp.Trace), exp.Warmup),
		Policies: names,
	}
	for _, b := range sizes {
		row := sim.TableRow{Buffer: b, Ratios: make([]float64, len(factories))}
		for i, f := range factories {
			row.Ratios[i] = exp.HitRatio(f, b)
		}
		t.Rows = append(t.Rows, row)
	}
	fmt.Fprintln(w, t.Render())
	return nil
}

// factoryFor resolves a policy name, applying the §2.1 period options to
// lru-K policies (other policies have no such knobs).
func factoryFor(name string, opts core.Options) (sim.Factory, error) {
	var k int
	if name == "lru" || name == "lru-1" {
		k = 1
	} else if n, err := fmt.Sscanf(name, "lru-%d", &k); err != nil || n != 1 {
		return sim.FactoryByName(name)
	}
	if k < 1 {
		return nil, fmt.Errorf("invalid policy %q", name)
	}
	return sim.LRUKOpts(k, opts), nil
}

func makeGenerator(name string, seed uint64) (workload.Generator, error) {
	switch name {
	case "twopool":
		return workload.NewTwoPool(100, 10000, seed), nil
	case "zipf":
		return workload.NewZipfian(1000, 0.8, 0.2, seed), nil
	case "oltp":
		return workload.NewOLTP(workload.OLTPConfig{}, seed)
	case "scan":
		return workload.NewScanInterference(50000, 400, 0.95, 2000, 5000, seed), nil
	case "hotspot":
		return workload.NewMovingHotSpot(10000, 200, 0.9, 20000, seed), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("buffer size must be positive, got %d", v)
		}
		out = append(out, v)
	}
	return out, nil
}
