package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

func TestRunGeneratesBinaryTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.trc")
	if err := run("twopool", 5000, out, "binary", 1, 0, 100, 10000, 0.8, 0.2, 0); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	refs, err := trace.ReadBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 5000 {
		t.Fatalf("trace length %d, want 5000", len(refs))
	}
}

func TestRunGeneratesTextTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.txt")
	if err := run("zipf", 1000, out, "text", 2, 500, 0, 0, 0.8, 0.2, 0); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	refs, err := trace.ReadText(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1000 {
		t.Fatalf("trace length %d, want 1000", len(refs))
	}
	for _, p := range refs {
		if p < 0 || p >= 500 {
			t.Fatalf("page %d outside zipf population", p)
		}
	}
}

func TestRunCorrelatedWrapper(t *testing.T) {
	out := filepath.Join(t.TempDir(), "c.trc")
	if err := run("zipf", 5000, out, "binary", 3, 200, 0, 0, 0.8, 0.2, 0.6); err != nil {
		t.Fatal(err)
	}
	f, _ := os.Open(out)
	defer f.Close()
	refs, err := trace.ReadBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	repeats := 0
	for i := 1; i < len(refs); i++ {
		if refs[i] == refs[i-1] {
			repeats++
		}
	}
	if float64(repeats)/float64(len(refs)) < 0.2 {
		t.Errorf("correlated wrapper produced only %d repeats in %d refs", repeats, len(refs))
	}
}

func TestRunAllWorkloads(t *testing.T) {
	for _, wl := range []string{"twopool", "zipf", "oltp", "scan", "hotspot"} {
		out := filepath.Join(t.TempDir(), wl+".trc")
		if err := run(wl, 2000, out, "binary", 1, 0, 100, 10000, 0.8, 0.2, 0); err != nil {
			t.Errorf("workload %s: %v", wl, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run("nope", 100, filepath.Join(dir, "x"), "binary", 1, 0, 100, 10000, 0.8, 0.2, 0); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run("zipf", 0, filepath.Join(dir, "x"), "binary", 1, 0, 100, 10000, 0.8, 0.2, 0); err == nil {
		t.Error("zero refs accepted")
	}
	if err := run("zipf", 100, filepath.Join(dir, "x"), "yaml", 1, 0, 100, 10000, 0.8, 0.2, 0); err == nil {
		t.Error("unknown format accepted")
	}
}
