// Command tracegen generates page reference traces from the repository's
// workload generators and writes them as trace files (binary by default,
// text with -format text).
//
// Usage:
//
//	tracegen -workload twopool -refs 100000 -o twopool.trc
//	tracegen -workload zipf -pages 1000 -refs 470000 -format text -o zipf.txt
//	tracegen -workload oltp -refs 470000 -o oltp.trc
//	tracegen -workload scan | traceinfo          # stdout when -o is absent
//
// Workloads: twopool, zipf, oltp, scan, hotspot.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		name   = flag.String("workload", "twopool", "workload: twopool, zipf, oltp, scan, hotspot")
		refs   = flag.Int("refs", 100000, "number of references to generate")
		out    = flag.String("o", "", "output file (default stdout)")
		format = flag.String("format", "binary", "trace format: binary or text")
		seed   = flag.Uint64("seed", 1, "RNG seed")
		pages  = flag.Int("pages", 0, "page population (workload-specific default)")
		n1     = flag.Int("n1", 100, "twopool: hot pool size")
		n2     = flag.Int("n2", 10000, "twopool: cold pool size")
		alpha  = flag.Float64("alpha", 0.8, "zipf: skew α")
		beta   = flag.Float64("beta", 0.2, "zipf: skew β")
		correl = flag.Float64("correlated", 0, "wrap with correlated bursts at this probability")
	)
	flag.Parse()
	if err := run(*name, *refs, *out, *format, *seed, *pages, *n1, *n2, *alpha, *beta, *correl); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(name string, refs int, out, format string, seed uint64, pages, n1, n2 int, alpha, beta, correl float64) error {
	if refs <= 0 {
		return fmt.Errorf("refs must be positive, got %d", refs)
	}
	g, err := makeGenerator(name, seed, pages, n1, n2, alpha, beta)
	if err != nil {
		return err
	}
	if correl > 0 {
		g = workload.NewCorrelated(g, correl, 4, seed+1)
	}
	refsSlice := workload.Generate(g, refs)

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "binary":
		return trace.WriteBinary(w, refsSlice)
	case "text":
		return trace.WriteText(w, refsSlice)
	default:
		return fmt.Errorf("unknown format %q (want binary or text)", format)
	}
}

func makeGenerator(name string, seed uint64, pages, n1, n2 int, alpha, beta float64) (workload.Generator, error) {
	switch name {
	case "twopool":
		return workload.NewTwoPool(n1, n2, seed), nil
	case "zipf":
		if pages == 0 {
			pages = 1000
		}
		return workload.NewZipfian(pages, alpha, beta, seed), nil
	case "oltp":
		cfg := workload.OLTPConfig{DBPages: pages} // 0 selects the default
		return workload.NewOLTP(cfg, seed)
	case "scan":
		if pages == 0 {
			pages = 50000
		}
		return workload.NewScanInterference(pages, pages/125, 0.95, 2000, 5000, seed), nil
	case "hotspot":
		if pages == 0 {
			pages = 10000
		}
		return workload.NewMovingHotSpot(pages, pages/50, 0.9, 20000, seed), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}
