package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunKSweep(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "ksweep", 7, 1, "text"); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"K-sweep", "LRU-5", "A0"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunCRPAndRIP(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "crp", 17, 1, "text"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "CRP=16") {
		t.Errorf("crp output:\n%s", out.String())
	}
	out.Reset()
	if err := run(&out, "rip", 19, 1, "csv"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "RIP=1600") {
		t.Errorf("rip output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "B,RIP=100") {
		t.Errorf("csv output missing header:\n%s", out.String())
	}
	out.Reset()
	if err := run(&out, "crp", 17, 1, "yaml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRunUnknownTable(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "9.9", 1, 1, "text"); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestDefaultSeed(t *testing.T) {
	if got := defaultSeed(0, 7); got != 7 {
		t.Errorf("defaultSeed(0,7) = %d", got)
	}
	if got := defaultSeed(5, 7); got != 5 {
		t.Errorf("defaultSeed(5,7) = %d", got)
	}
}
