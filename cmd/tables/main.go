// Command tables regenerates the evaluation tables of the LRU-K paper
// (O'Neil, O'Neil & Weikum, SIGMOD 1993) and this repository's ablation
// tables.
//
// Usage:
//
//	tables -table 4.1            # two-pool experiment (Table 4.1)
//	tables -table 4.2            # Zipfian experiment (Table 4.2)
//	tables -table 4.3            # synthetic OLTP trace experiment (Table 4.3)
//	tables -table all            # everything, including ablations
//	tables -table ksweep         # LRU-K vs A0 as K grows
//	tables -table adaptivity     # moving hot spot: LRU-2 vs LRU-3 vs LFU
//	tables -table scan           # Example 1.2 scan resistance
//	tables -table crp            # Correlated Reference Period sweep
//	tables -table rip            # Retained Information Period sweep
//
// Flags -seed and -repeats control determinism and smoothing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/policy"
	"repro/internal/sim"
)

func main() {
	var (
		table   = flag.String("table", "all", "which table to produce: 4.1, 4.2, 4.3, ksweep, adaptivity, scan, crp, rip, all")
		seed    = flag.Uint64("seed", 0, "base RNG seed (0 = per-table default)")
		repeats = flag.Int("repeats", 0, "independent runs averaged per cell (0 = default)")
		format  = flag.String("format", "text", "output format: text or csv")
	)
	flag.Parse()
	if err := run(os.Stdout, *table, *seed, *repeats, *format); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(2)
	}
}

// run produces the named table (or every table for "all") on w.
func run(w io.Writer, table string, seed uint64, repeats int, format string) error {
	emit := func(t *sim.Table) error {
		switch format {
		case "text":
			fmt.Fprintln(w, t.Render())
		case "csv":
			fmt.Fprint(w, t.CSV())
		default:
			return fmt.Errorf("unknown format %q (want text or csv)", format)
		}
		return nil
	}
	one := func(name string) error {
		switch name {
		case "4.1":
			return emit(sim.RunTable41(sim.Table41Config{Seed: seed, Repeats: repeats}))
		case "4.2":
			return emit(sim.RunTable42(sim.Table42Config{Seed: seed, Repeats: repeats}))
		case "4.3":
			return emit(sim.RunTable43(sim.Table43Config{Seed: seed}))
		case "ksweep":
			return emit(sim.RunKSweep(100, 5, repeats, defaultSeed(seed, 7)))
		case "adaptivity":
			return emit(sim.RunAdaptivity(250, 20000, defaultSeed(seed, 11)))
		case "scan":
			return emit(sim.RunScanResistance(600, defaultSeed(seed, 13)))
		case "crp":
			return emit(sim.RunCRPSweep(120, []policy.Tick{0, 1, 2, 4, 8, 16}, defaultSeed(seed, 17)))
		case "rip":
			return emit(sim.RunRIPSweep(120, []policy.Tick{100, 200, 400, 800, 1600, 0}, defaultSeed(seed, 19)))
		default:
			return fmt.Errorf("unknown table %q", name)
		}
	}
	names := []string{table}
	if table == "all" {
		names = []string{"4.1", "4.2", "4.3", "ksweep", "adaptivity", "scan", "crp", "rip"}
	}
	for _, name := range names {
		if err := one(name); err != nil {
			return err
		}
	}
	return nil
}

func defaultSeed(seed, fallback uint64) uint64 {
	if seed != 0 {
		return seed
	}
	return fallback
}
