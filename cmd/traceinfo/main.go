// Command traceinfo analyses a page reference trace the way §4.3 of the
// paper characterises the bank OLTP trace: reference counts, distinct
// pages, skew quantiles ("40% of the references access only 3% of the
// pages"), and the Five-Minute-Rule hot-set size.
//
// Usage:
//
//	traceinfo trace.trc
//	tracegen -workload oltp -refs 470000 | traceinfo -format binary -window 13000
//
// With no file argument the trace is read from stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/policy"
	"repro/internal/trace"
)

func main() {
	var (
		format = flag.String("format", "binary", "trace format: binary or text")
		window = flag.Float64("window", 13000, "hot-set interarrival window in references (the Five Minute Rule analogue)")
	)
	flag.Parse()
	if err := run(os.Stdout, flag.Args(), *format, *window); err != nil {
		fmt.Fprintln(os.Stderr, "traceinfo:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string, format string, window float64) error {
	var r io.Reader = os.Stdin
	if len(args) > 1 {
		return fmt.Errorf("at most one trace file, got %d", len(args))
	}
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	refs, err := read(r, format)
	if err != nil {
		return err
	}
	s := trace.Analyze(refs)
	fmt.Fprintf(w, "references:         %d\n", s.Refs)
	fmt.Fprintf(w, "distinct pages:     %d\n", s.Distinct)
	fmt.Fprintf(w, "top-10 page counts: %v\n", s.TopPageCounts(10))
	for _, frac := range []float64{0.01, 0.03, 0.10, 0.30, 0.65} {
		fmt.Fprintf(w, "hottest %4.0f%% of pages take %5.1f%% of references\n",
			frac*100, 100*s.RefFractionOfHottestPages(frac))
	}
	for _, share := range []float64{0.40, 0.50, 0.90} {
		fmt.Fprintf(w, "%3.0f%% of references fall on the hottest %5.1f%% of pages\n",
			share*100, 100*s.PageFractionForRefShare(share))
	}
	fmt.Fprintf(w, "hot set (mean interarrival <= %.0f refs): %d pages\n", window, s.HotSetSize(window))
	return nil
}

func read(r io.Reader, format string) ([]policy.PageID, error) {
	switch format {
	case "binary":
		return trace.ReadBinary(r)
	case "text":
		return trace.ReadText(r)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}
