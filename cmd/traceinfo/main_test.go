package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/trace"
)

func writeTrace(t *testing.T, refs []policy.PageID) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteBinary(f, refs); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReportsProfile(t *testing.T) {
	refs := []policy.PageID{1, 1, 1, 1, 2, 2, 3, 4}
	path := writeTrace(t, refs)
	var out bytes.Buffer
	if err := run(&out, []string{path}, "binary", 3); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"references:         8",
		"distinct pages:     4",
		"hot set",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunTextFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.txt")
	if err := os.WriteFile(path, []byte("1\n2\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(&out, []string{path}, "text", 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "references:         3") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, []string{"a", "b"}, "binary", 10); err == nil {
		t.Error("two file args accepted")
	}
	if err := run(&out, []string{"/does/not/exist"}, "binary", 10); err == nil {
		t.Error("missing file accepted")
	}
	path := writeTrace(t, []policy.PageID{1})
	if err := run(&out, []string{path}, "yaml", 10); err == nil {
		t.Error("unknown format accepted")
	}
}
